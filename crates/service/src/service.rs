//! The release service: one [`AgencyStore`] served to many tenants.
//!
//! # Request lifecycle
//!
//! ```text
//!                 ┌────────────────────────── HTTP pool ──────────────┐
//! tenant ── POST ─►  parse → validate → ReleaseKey → public cache? ───┼─► 200 (cached)
//!                 │                                   │ miss          │
//!                 │                 resolve season ── ▼ enqueue ──────┼─► 202 (queued)
//!                 └──────────────────────────┬────────────────────────┘
//!                                            │ per-season mpsc queue
//!                 ┌────────────────── season worker (owns the lease) ─┐
//!                 │ plan += request → SeasonStore::run_cached…        │
//!                 │   → ledger charge → artifact persisted            │
//!                 │   → public cache save → registry: complete        │
//!                 └───────────────────────────────────────────────────┘
//! tenant ── GET /releases/{id} ── registry ──► queued | complete | failed
//! ```
//!
//! # Concurrency model
//!
//! Every season gets exactly one **worker thread** owning its
//! [`SeasonStore`] — and with it the season's on-disk write lease — for
//! the lifetime of the service. Submissions to one season serialize
//! through its worker's queue (season ledgers are strictly ordered
//! objects; there is no correct concurrent charge), while different
//! seasons run fully in parallel. All workers share one
//! [`TabulationIndex`] of the dataset (built once at startup) and the
//! agency's persistent truth store, so concurrent tenants never duplicate
//! tabulation work. Every admission decision is durable before it is
//! acknowledged: a completed release is an artifact + ledger snapshot on
//! disk, and killing the service loses nothing but the in-memory
//! release-id registry.
//!
//! # The public/confidential boundary
//!
//! The public artifact cache is checked **before** a submission is
//! resolved to a season: a repeat identical request is answered from
//! released bits alone — zero ε, zero tabulation, no season, no lease,
//! no confidential data. Everything else crosses into the confidential
//! side only through a season worker, whose every charge lands in the
//! season ledger and, transitively, under the agency cap.

use crate::api::{
    AuditView, ReleaseStatusView, ReleaseSubmission, SeasonCreate, SeasonCreated, SubmitReceipt,
};
use crate::http::{Handler, HttpServer, Request, Response};
use eree_core::agency::{AgencyStore, SeasonSummary};
use eree_core::definitions::PrivacyParams;
use eree_core::engine::{ReleaseArtifact, ReleaseRequest, TabulationCache, TabulationStats};
use eree_core::public_cache::{ReleaseCache, ReleaseKey};
use eree_core::store::{dataset_digest, SeasonStore, StoreError};
use eree_core::truths::TruthStore;
use lodes::Dataset;
use serde::Deserialize;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use tabulate::{FilterExpr, TabulationIndex};

/// Service startup configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; `"127.0.0.1:0"` picks an ephemeral port.
    pub addr: String,
    /// HTTP pool size (season workers are separate, one per season).
    pub http_threads: usize,
    /// The agency's global `(α, ε[, δ])` cap — must match an existing
    /// agency directory's cap when reopening one.
    pub cap: PrivacyParams,
}

impl ServiceConfig {
    /// Loopback on an ephemeral port, four HTTP threads, cap `cap`.
    pub fn new(cap: PrivacyParams) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
            cap,
        }
    }
}

/// A failure starting or stopping the service.
#[derive(Debug)]
pub enum ServiceError {
    /// The agency (or one of its stores) refused.
    Store(StoreError),
    /// Binding or driving the listener failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Store(e) => write!(f, "agency store error: {e}"),
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// Where one accepted release currently stands.
enum ReleaseState {
    Queued,
    Complete {
        artifact: Arc<ReleaseArtifact>,
        cached: bool,
    },
    Failed {
        error: String,
    },
}

struct ReleaseRecord {
    season: String,
    state: ReleaseState,
}

/// A season's live audit view, maintained by its worker.
struct SeasonView {
    summary: SeasonSummary,
    stats: TabulationStats,
}

enum Job {
    Release { id: u64, request: ReleaseRequest },
    Shutdown,
}

struct SeasonWorker {
    tx: mpsc::Sender<Job>,
    join: JoinHandle<()>,
    view: Arc<Mutex<SeasonView>>,
}

/// State shared by the HTTP pool and every season worker.
///
/// Lock order (where multiple are held): `agency` → `workers` →
/// `registry` → a season `view`. Workers only ever take `registry` and
/// their own `view`, so they can never deadlock against the HTTP side.
struct Shared {
    dataset: Arc<Dataset>,
    digest: u64,
    index: Arc<TabulationIndex>,
    truths: TruthStore,
    cache: ReleaseCache,
    agency: Mutex<AgencyStore>,
    workers: Mutex<BTreeMap<String, SeasonWorker>>,
    registry: Mutex<Vec<ReleaseRecord>>,
    cache_hits: AtomicU64,
}

/// The running multi-tenant release service. See the [module docs](self).
pub struct ReleaseService {
    shared: Arc<Shared>,
    http: HttpServer,
}

impl ReleaseService {
    /// Open (or create) the agency under `root` with `config.cap`, pin it
    /// to `dataset`, build the shared tabulation index, and start
    /// serving. The bound address (with the real port) is
    /// [`addr`](Self::addr).
    pub fn start(
        root: impl AsRef<Path>,
        dataset: Dataset,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let mut agency = AgencyStore::open_or_create(root.as_ref(), config.cap)?;
        let digest = dataset_digest(&dataset);
        agency.bind_dataset(digest)?;
        let cache = agency.release_cache()?;
        let truths = agency.truth_store()?.expect("dataset bound just above");
        let index = Arc::new(TabulationIndex::build(&dataset));
        let shared = Arc::new(Shared {
            dataset: Arc::new(dataset),
            digest,
            index,
            truths,
            cache,
            agency: Mutex::new(agency),
            workers: Mutex::new(BTreeMap::new()),
            registry: Mutex::new(Vec::new()),
            cache_hits: AtomicU64::new(0),
        });
        let handler: Handler = {
            let shared = Arc::clone(&shared);
            Arc::new(move |request: &Request| route(&shared, request))
        };
        let http = HttpServer::serve(&config.addr, config.http_threads, handler)?;
        Ok(Self { shared, http })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// ε still unreserved under the agency cap.
    pub fn remaining_epsilon(&self) -> f64 {
        self.shared
            .agency
            .lock()
            .expect("agency lock poisoned")
            .remaining_epsilon()
    }

    /// Stop accepting requests, drain every season's queue, persist
    /// everything, release all leases, and join every thread. Consumes
    /// the service; the agency directory is reopenable afterwards.
    pub fn shutdown(mut self) {
        self.http.shutdown();
        let workers =
            std::mem::take(&mut *self.shared.workers.lock().expect("workers lock poisoned"));
        for (_, worker) in workers {
            // Queued jobs drain first — Shutdown lands behind them.
            let _ = worker.tx.send(Job::Shutdown);
            let _ = worker.join.join();
        }
        // `self.shared` is the last Arc now (HTTP and workers joined), so
        // dropping it drops the AgencyStore and releases its lease.
    }
}

/// Route one request. Pure with respect to the HTTP layer: all state
/// lives in `shared`.
fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["seasons"]) => create_season(shared, &request.body),
        ("POST", ["seasons", name, "releases"]) => submit_release(shared, name, &request.body),
        ("GET", ["releases", id]) => release_status(shared, id),
        ("GET", ["audit"]) => audit(shared),
        _ => Response::error(404, "no such route"),
    }
}

fn parse_body<T: Deserialize>(body: &str) -> Result<T, Response> {
    serde_json::from_str(body).map_err(|e| Response::error(400, &format!("invalid body: {e}")))
}

fn json_ok<T: serde::Serialize>(status: u16, value: &T) -> Response {
    Response::json(
        status,
        serde_json::to_string(value).expect("response serialization is infallible"),
    )
}

/// Map a [`StoreError`] onto the API's status vocabulary.
fn store_error(e: &StoreError) -> Response {
    let status = match e {
        StoreError::Locked { .. } => 423,
        StoreError::AlreadyExists { .. }
        | StoreError::AgencyBudget { .. }
        | StoreError::Refused { .. }
        | StoreError::Inconsistent { .. } => 409,
        StoreError::NotAStore { .. } => 404,
        _ => 500,
    };
    Response::error(status, &e.to_string())
}

fn create_season(shared: &Arc<Shared>, body: &str) -> Response {
    let create: SeasonCreate = match parse_body(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let mut agency = shared.agency.lock().expect("agency lock poisoned");
    match agency.create_season(&create.name, create.budget) {
        // Drop the returned store immediately: its write lease must be
        // free for the season's worker to claim on first submission.
        Ok(store) => {
            drop(store);
            json_ok(
                200,
                &SeasonCreated {
                    name: create.name,
                    budget: create.budget,
                    remaining_epsilon: agency.remaining_epsilon(),
                },
            )
        }
        Err(e) => store_error(&e),
    }
}

fn submit_release(shared: &Arc<Shared>, name: &str, body: &str) -> Response {
    let submission: ReleaseSubmission = match parse_body(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    // Non-finite budgets must be refused at the boundary: the mechanism
    // constructors (correctly) treat them as programmer error and panic,
    // but over the wire they are client error.
    let budget = submission.budget;
    let budget_valid = budget.alpha.is_finite()
        && budget.alpha > 0.0
        && budget.epsilon.is_finite()
        && budget.epsilon > 0.0
        && budget.delta.is_finite()
        && budget.delta >= 0.0;
    if !budget_valid {
        return Response::error(400, "budget parameters must be finite and positive");
    }
    let request = submission.to_request();
    // Validate the rest up front: an unpriceable request 400s here and
    // never reaches a queue (or the ledger).
    if let Err(e) = request.plan() {
        return Response::error(400, &format!("invalid release request: {e}"));
    }
    // The release's full public identity — checked against the cache
    // BEFORE any season is resolved. A hit is answered from released
    // bits alone: zero ε, zero tabulation, nothing confidential touched.
    let key = ReleaseKey {
        dataset_digest: shared.digest,
        kind: submission.kind,
        spec: submission.spec.clone(),
        mechanism: submission.mechanism,
        budget: submission.budget,
        budget_is_per_cell: submission.budget_is_per_cell,
        filter: submission.filter.as_ref().map(FilterExpr::normalized),
        integerized: submission.integerize,
        seed: submission.seed,
    };
    if let Some(artifact) = shared.cache.load(&key) {
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        let id = {
            let mut registry = shared.registry.lock().expect("registry lock poisoned");
            registry.push(ReleaseRecord {
                season: String::new(),
                state: ReleaseState::Complete {
                    artifact: Arc::new(artifact),
                    cached: true,
                },
            });
            (registry.len() - 1) as u64
        };
        return json_ok(
            200,
            &SubmitReceipt {
                id,
                status: "complete".to_string(),
                cached: true,
            },
        );
    }
    // Cache miss: the request crosses to the confidential side through
    // the season's worker queue.
    let agency = shared.agency.lock().expect("agency lock poisoned");
    if agency.meta_ledger().reservation(name).is_none() {
        return Response::error(404, &format!("no season named `{name}`"));
    }
    let mut workers = shared.workers.lock().expect("workers lock poisoned");
    if !workers.contains_key(name) {
        match spawn_worker(shared, &agency, name) {
            Ok(worker) => {
                workers.insert(name.to_string(), worker);
            }
            Err(e) => return store_error(&e),
        }
    }
    let worker = workers.get(name).expect("inserted just above");
    let id = {
        let mut registry = shared.registry.lock().expect("registry lock poisoned");
        registry.push(ReleaseRecord {
            season: name.to_string(),
            state: ReleaseState::Queued,
        });
        (registry.len() - 1) as u64
    };
    if worker.tx.send(Job::Release { id, request }).is_err() {
        set_state(
            shared,
            id,
            ReleaseState::Failed {
                error: "season worker is gone".to_string(),
            },
        );
        return Response::error(500, "season worker is gone");
    }
    json_ok(
        202,
        &SubmitReceipt {
            id,
            status: "queued".to_string(),
            cached: false,
        },
    )
}

fn release_status(shared: &Arc<Shared>, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "release id must be an integer");
    };
    let registry = shared.registry.lock().expect("registry lock poisoned");
    let Some(record) = registry.get(id as usize) else {
        return Response::error(404, &format!("no release with id {id}"));
    };
    let view = match &record.state {
        ReleaseState::Queued => ReleaseStatusView {
            id,
            season: record.season.clone(),
            status: "queued".to_string(),
            cached: false,
            error: None,
            artifact: None,
        },
        ReleaseState::Complete { artifact, cached } => ReleaseStatusView {
            id,
            season: record.season.clone(),
            status: "complete".to_string(),
            cached: *cached,
            error: None,
            artifact: Some(artifact.as_ref().clone()),
        },
        ReleaseState::Failed { error } => ReleaseStatusView {
            id,
            season: record.season.clone(),
            status: "failed".to_string(),
            cached: false,
            error: Some(error.clone()),
            artifact: None,
        },
    };
    json_ok(200, &view)
}

fn audit(shared: &Arc<Shared>) -> Response {
    let agency = shared.agency.lock().expect("agency lock poisoned");
    let workers = shared.workers.lock().expect("workers lock poisoned");
    let mut seasons = Vec::new();
    let mut stats = TabulationStats::default();
    for reservation in agency.meta_ledger().reservations() {
        match workers.get(&reservation.name) {
            // A live worker's view is fresher than the agency's (the
            // worker owns the season store; the agency read it at open).
            Some(worker) => {
                let view = worker.view.lock().expect("season view poisoned");
                seasons.push(view.summary.clone());
                stats.computed += view.stats.computed;
                stats.hits += view.stats.hits;
                stats.disk_hits += view.stats.disk_hits;
            }
            None => seasons.push(
                agency
                    .seasons()
                    .iter()
                    .find(|s| s.name == reservation.name)
                    .cloned()
                    .unwrap_or(SeasonSummary {
                        name: reservation.name.clone(),
                        budget: reservation.budget,
                        spent_epsilon: 0.0,
                        spent_delta: 0.0,
                        completed: 0,
                        materialized: false,
                    }),
            ),
        }
    }
    let releases = shared
        .registry
        .lock()
        .expect("registry lock poisoned")
        .len() as u64;
    let view = AuditView {
        cap: *agency.cap(),
        reserved_epsilon: agency.meta_ledger().reserved_epsilon(),
        remaining_epsilon: agency.remaining_epsilon(),
        spent_epsilon: seasons.iter().map(|s| s.spent_epsilon).sum(),
        seasons,
        releases,
        cache_hits: shared.cache_hits.load(Ordering::Relaxed),
        cache_entries: shared.cache.len() as u64,
        tabulations: stats,
    };
    json_ok(200, &view)
}

fn set_state(shared: &Shared, id: u64, state: ReleaseState) {
    let mut registry = shared.registry.lock().expect("registry lock poisoned");
    if let Some(record) = registry.get_mut(id as usize) {
        record.state = state;
    }
}

/// Open season `name` (claiming its write lease), rebuild its plan from
/// persisted provenance, and start its worker thread. Called under the
/// `agency` and `workers` locks.
fn spawn_worker(
    shared: &Arc<Shared>,
    agency: &AgencyStore,
    name: &str,
) -> Result<SeasonWorker, StoreError> {
    let store = agency.open_season(name)?;
    let mut plan = Vec::with_capacity(store.completed());
    for release in store.releases() {
        match ReleaseRequest::from_provenance(&release.request) {
            Some(request) => plan.push(request),
            None => {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "season `{name}` holds a closure-filtered release ({}) whose plan \
                         cannot be reconstructed; it cannot be served",
                        release.request.description
                    ),
                })
            }
        }
    }
    let view = Arc::new(Mutex::new(SeasonView {
        summary: SeasonSummary {
            name: name.to_string(),
            budget: *store.ledger().budget(),
            spent_epsilon: store.ledger().spent_epsilon(),
            spent_delta: store.ledger().spent_delta(),
            completed: store.completed(),
            materialized: true,
        },
        stats: TabulationStats::default(),
    }));
    let (tx, rx) = mpsc::channel::<Job>();
    let join = {
        let shared = Arc::clone(shared);
        let view = Arc::clone(&view);
        std::thread::spawn(move || season_worker(shared, store, plan, rx, view))
    };
    Ok(SeasonWorker { tx, join, view })
}

/// The per-season worker loop: owns the [`SeasonStore`] (and its lease)
/// until shutdown, executing queued releases strictly in order.
fn season_worker(
    shared: Arc<Shared>,
    mut store: SeasonStore,
    mut plan: Vec<ReleaseRequest>,
    rx: mpsc::Receiver<Job>,
    view: Arc<Mutex<SeasonView>>,
) {
    let mut cache = TabulationCache::with_store(shared.truths.clone())
        .with_shared_index(Arc::clone(&shared.index));
    while let Ok(job) = rx.recv() {
        let (id, request) = match job {
            Job::Shutdown => break,
            Job::Release { id, request } => (id, request),
        };
        plan.push(request);
        match store.run_cached_with_digest(&shared.dataset, shared.digest, &plan, &mut cache) {
            Ok(report) => {
                match store.load_artifact(store.completed() - 1) {
                    Ok(artifact) => {
                        let artifact = Arc::new(artifact);
                        // Publish to the released-artifact cache. Every
                        // service release has a declarative identity, so
                        // the key always exists; a cache-write failure is
                        // only a lost optimization, never a lost release.
                        if let Some(key) = ReleaseKey::of(&artifact.request, shared.digest) {
                            let _ = shared.cache.save(&key, &artifact);
                        }
                        set_state(
                            &shared,
                            id,
                            ReleaseState::Complete {
                                artifact,
                                cached: false,
                            },
                        )
                    }
                    Err(e) => set_state(
                        &shared,
                        id,
                        ReleaseState::Failed {
                            error: format!("release persisted but failed to load back: {e}"),
                        },
                    ),
                }
                let mut v = view.lock().expect("season view poisoned");
                v.stats.computed += report.tabulations_computed;
                v.stats.hits += report.tabulation_hits;
                v.stats.disk_hits += report.tabulation_disk_hits;
            }
            Err(e) => {
                // The refusal recorded nothing: keep the plan in lockstep
                // with the store.
                plan.pop();
                set_state(
                    &shared,
                    id,
                    ReleaseState::Failed {
                        error: e.to_string(),
                    },
                );
            }
        }
        let mut v = view.lock().expect("season view poisoned");
        v.summary.spent_epsilon = store.ledger().spent_epsilon();
        v.summary.spent_delta = store.ledger().spent_delta();
        v.summary.completed = store.completed();
    }
    // `store` drops here: the season's write lease is released.
}
