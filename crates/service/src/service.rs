//! The release service: one [`AgencyStore`] served to many tenants.
//!
//! # Request lifecycle
//!
//! ```text
//!                 ┌────────────────────────── HTTP pool ──────────────┐
//! tenant ── POST ─►  parse → validate → ReleaseKey → public cache? ───┼─► 200 (cached)
//!                 │                                   │ miss          │
//!                 │                 resolve season ── ▼ enqueue ──────┼─► 202 (queued)
//!                 └──────────────────────────┬────────────────────────┘
//!                                            │ per-season mpsc queue
//!                 ┌────────────────── season worker (owns the lease) ─┐
//!                 │ plan += request → SeasonStore::run_cached…        │
//!                 │   → ledger charge → artifact persisted            │
//!                 │   → public cache save → registry: complete        │
//!                 └───────────────────────────────────────────────────┘
//! tenant ── GET /releases/{id} ── registry ──► queued | complete | failed
//! ```
//!
//! # Concurrency model
//!
//! Every season gets exactly one **worker thread** owning its
//! [`SeasonStore`] — and with it the season's on-disk write lease — until
//! service shutdown or (with [`ServiceConfig::idle_timeout`] set) until
//! the season has gone idle, at which point the worker retires and
//! releases the lease; the next submission respawns it. Submissions to
//! one season serialize through its worker's queue (season ledgers are
//! strictly ordered objects; there is no correct concurrent charge),
//! while different seasons run fully in parallel. Workers for the same
//! quarter share one [`DatasetIndex`] (built lazily per quarter;
//! region-sharded automatically at national scale) and
//! the agency's persistent truth store, so concurrent tenants never
//! duplicate tabulation work. Every admission decision is durable before
//! it is acknowledged: a completed release is an artifact + ledger
//! snapshot on disk, and the release-id registry itself is persisted to
//! `releases.json`, so `GET /releases/{id}` survives a restart (completed
//! artifacts rehydrate from the public cache; releases that were still
//! queued report as failed).
//!
//! # Quarterly-panel mode
//!
//! [`ReleaseService::start_panel`] serves a whole [`DatasetPanel`]: each
//! season binds one quarter at creation (`SeasonCreate::quarter`,
//! persisted to `panel_quarters.json`), submissions have their seed
//! rewritten by the consistent-over-time rule
//! ([`panel_quarter_seed`]) before anything — including the cache key —
//! is computed, and `Flows` submissions tabulate the season's
//! `(q-1, q)` dataset pair (refused on quarter 0 and on single-snapshot
//! services). Level releases are keyed by their quarter's dataset
//! digest, flow releases by the pair digest, so the one public cache
//! serves every quarter without aliasing.
//!
//! # The public/confidential boundary
//!
//! The public artifact cache is checked **before** a submission is
//! resolved to a worker: a repeat identical request is answered from
//! released bits alone — zero ε, zero tabulation, no lease, no
//! confidential data. Everything else crosses into the confidential
//! side only through a season worker, whose every charge lands in the
//! season ledger and, transitively, under the agency cap.

use crate::api::{
    AuditView, ReleaseStatusView, ReleaseSubmission, SeasonCreate, SeasonCreated, SubmitReceipt,
};
use crate::http::{Handler, HttpServer, Request, Response};
use eree_core::agency::{panel_quarter_seed, AgencyStore, SeasonSummary};
use eree_core::definitions::PrivacyParams;
use eree_core::engine::{
    ReleaseArtifact, ReleaseRequest, RequestKind, TabulationCache, TabulationStats,
};
use eree_core::metrics::{MetricsRegistry, MetricsSnapshot, SeasonQueue};
use eree_core::public_cache::{ReleaseCache, ReleaseKey};
use eree_core::store::{
    dataset_digest, dataset_pair_digest, panel_digest, SeasonStore, StoreError,
};
use eree_core::truths::TruthStore;
use lodes::{Dataset, DatasetPanel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;
use tabulate::{DatasetIndex, FilterExpr};

/// Format version of the service's own persisted files (`releases.json`,
/// `panel_quarters.json`).
const SERVICE_FORMAT_VERSION: u32 = 1;
/// Persistent release-id registry file under the service root.
const REGISTRY_FILE: &str = "releases.json";
/// Persistent season → panel-quarter bindings under the service root.
const QUARTERS_FILE: &str = "panel_quarters.json";

/// Service startup configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; `"127.0.0.1:0"` picks an ephemeral port.
    pub addr: String,
    /// HTTP pool size (season workers are separate, one per season).
    pub http_threads: usize,
    /// The agency's global `(α, ε[, δ])` cap — must match an existing
    /// agency directory's cap when reopening one.
    pub cap: PrivacyParams,
    /// Retire a season's worker thread — releasing the season's on-disk
    /// write lease — after this long without a submission. `None` keeps
    /// every worker alive until shutdown. A retired season respawns
    /// transparently on its next submission.
    pub idle_timeout: Option<Duration>,
}

impl ServiceConfig {
    /// Loopback on an ephemeral port, four HTTP threads, cap `cap`, no
    /// idle-season timeout.
    pub fn new(cap: PrivacyParams) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
            cap,
            idle_timeout: None,
        }
    }
}

/// A failure starting or stopping the service.
#[derive(Debug)]
pub enum ServiceError {
    /// The agency (or one of its stores) refused.
    Store(StoreError),
    /// Binding or driving the listener failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Store(e) => write!(f, "agency store error: {e}"),
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// Where one accepted release currently stands.
enum ReleaseState {
    Queued,
    Complete {
        artifact: Arc<ReleaseArtifact>,
        cached: bool,
    },
    Failed {
        error: String,
    },
}

struct ReleaseRecord {
    season: String,
    /// The release's full public identity, known at admission (every
    /// service release is declarative). Used to rehydrate completed
    /// artifacts from the public cache after a restart.
    key: Option<ReleaseKey>,
    state: ReleaseState,
}

/// One record of the persisted registry (`releases.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedRecord {
    season: String,
    status: String,
    cached: bool,
    error: Option<String>,
    key: Option<ReleaseKey>,
}

/// The persisted registry file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RegistryFile {
    format: u32,
    records: Vec<PersistedRecord>,
}

/// One season → quarter binding of a panel service.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuarterBinding {
    season: String,
    quarter: u64,
}

/// The persisted season → quarter bindings (`panel_quarters.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuartersFile {
    format: u32,
    bindings: Vec<QuarterBinding>,
}

/// A season's live audit view, maintained by its worker.
struct SeasonView {
    summary: SeasonSummary,
    stats: TabulationStats,
}

enum Job {
    Release { id: u64, request: ReleaseRequest },
    Shutdown,
}

struct SeasonWorker {
    tx: mpsc::Sender<Job>,
    join: JoinHandle<()>,
    view: Arc<Mutex<SeasonView>>,
    /// Jobs enqueued but not yet executed — the season's live queue
    /// depth, reported per season by `GET /metrics`.
    pending: Arc<AtomicU64>,
}

/// One quarter of the served data: the snapshot, its digest, a lazily
/// built shared tabulation index, and a truth-store handle pinned to the
/// quarter. A single-snapshot service is the one-quarter special case.
struct Quarter {
    dataset: Arc<Dataset>,
    digest: u64,
    index: OnceLock<DatasetIndex>,
    truths: TruthStore,
}

impl Quarter {
    fn index(&self) -> DatasetIndex {
        self.index
            .get_or_init(|| DatasetIndex::build_auto(&self.dataset))
            .clone()
    }
}

/// State shared by the HTTP pool and every season worker.
///
/// Lock order (where multiple are held): `agency` → `workers` →
/// `retired` → `registry` → a season `view`; `quarter_map` is only ever
/// held alone or directly under `agency`. Workers take `workers` only to
/// retire themselves (then `retired`), and otherwise only `registry` and
/// their own `view`, so they can never deadlock against the HTTP side.
struct Shared {
    quarters: Vec<Quarter>,
    panel: bool,
    quarter_map: Mutex<BTreeMap<String, usize>>,
    quarters_path: PathBuf,
    registry_path: PathBuf,
    cache: ReleaseCache,
    agency: Mutex<AgencyStore>,
    workers: Mutex<BTreeMap<String, SeasonWorker>>,
    /// Final audit summaries of seasons whose idle workers retired, so
    /// the audit view stays exact between retirement and respawn.
    retired: Mutex<BTreeMap<String, SeasonSummary>>,
    registry: Mutex<Vec<ReleaseRecord>>,
    cache_hits: AtomicU64,
    /// The agency's live metrics registry (the same `Arc` every season
    /// store and engine records into), plus the service-side counters.
    /// Readable without the agency lock.
    metrics: Arc<MetricsRegistry>,
    idle_timeout: Option<Duration>,
}

/// The running multi-tenant release service. See the [module docs](self).
pub struct ReleaseService {
    shared: Arc<Shared>,
    http: HttpServer,
}

impl ReleaseService {
    /// Open (or create) the agency under `root` with `config.cap`, pin it
    /// to `dataset`, and start serving. The bound address (with the real
    /// port) is [`addr`](Self::addr).
    pub fn start(
        root: impl AsRef<Path>,
        dataset: Dataset,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let root = root.as_ref();
        let mut agency = AgencyStore::open_or_create(root, config.cap)?;
        let digest = dataset_digest(&dataset);
        agency.bind_dataset(digest)?;
        let quarters = vec![Quarter {
            dataset: Arc::new(dataset),
            digest,
            index: OnceLock::new(),
            truths: agency.truth_store_pinned(digest)?,
        }];
        Self::serve(root, agency, quarters, false, config)
    }

    /// Open (or create) a **quarterly-panel** agency under `root` and
    /// serve every quarter of `panel`: seasons bind a quarter at
    /// creation, level releases draw on their quarter's snapshot, and
    /// flow releases tabulate the season's `(q-1, q)` pair — all from
    /// one `MetaLedger` cap. See the [module docs](self).
    pub fn start_panel(
        root: impl AsRef<Path>,
        panel: DatasetPanel,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let root = root.as_ref();
        let mut agency = AgencyStore::open_or_create_panel(root, config.cap)?;
        let digests: Vec<u64> = panel.snapshots().iter().map(dataset_digest).collect();
        agency.bind_dataset(panel_digest(&digests))?;
        let mut quarters = Vec::with_capacity(panel.quarters());
        for (snapshot, &digest) in panel.snapshots().iter().zip(&digests) {
            quarters.push(Quarter {
                dataset: Arc::new(snapshot.clone()),
                digest,
                index: OnceLock::new(),
                truths: agency.truth_store_pinned(digest)?,
            });
        }
        Self::serve(root, agency, quarters, true, config)
    }

    fn serve(
        root: &Path,
        agency: AgencyStore,
        quarters: Vec<Quarter>,
        panel: bool,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let cache = agency.release_cache()?;
        let quarters_path = root.join(QUARTERS_FILE);
        let quarter_map = if panel {
            load_quarter_map(&quarters_path, quarters.len())?
        } else {
            BTreeMap::new()
        };
        let registry_path = root.join(REGISTRY_FILE);
        let registry = load_registry(&registry_path, &cache);
        let metrics = agency.metrics();
        let shared = Arc::new(Shared {
            quarters,
            panel,
            quarter_map: Mutex::new(quarter_map),
            quarters_path,
            registry_path,
            cache,
            agency: Mutex::new(agency),
            workers: Mutex::new(BTreeMap::new()),
            retired: Mutex::new(BTreeMap::new()),
            registry: Mutex::new(registry),
            cache_hits: AtomicU64::new(0),
            metrics,
            idle_timeout: config.idle_timeout,
        });
        let handler: Handler = {
            let shared = Arc::clone(&shared);
            Arc::new(move |request: &Request| route(&shared, request))
        };
        let http = HttpServer::serve(&config.addr, config.http_threads, handler)?;
        Ok(Self { shared, http })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// ε still unreserved under the agency cap.
    pub fn remaining_epsilon(&self) -> f64 {
        self.shared
            .agency
            .lock()
            .expect("agency lock poisoned")
            .remaining_epsilon()
    }

    /// How many season workers are currently live (not retired). Exposed
    /// for tests of the idle-retirement path.
    pub fn live_workers(&self) -> usize {
        self.shared
            .workers
            .lock()
            .expect("workers lock poisoned")
            .len()
    }

    /// Stop accepting requests, drain every season's queue, persist
    /// everything, release all leases, and join every thread. Consumes
    /// the service; the agency directory is reopenable afterwards.
    pub fn shutdown(mut self) {
        self.http.shutdown();
        let workers =
            std::mem::take(&mut *self.shared.workers.lock().expect("workers lock poisoned"));
        for (_, worker) in workers {
            // Queued jobs drain first — Shutdown lands behind them.
            let _ = worker.tx.send(Job::Shutdown);
            let _ = worker.join.join();
        }
        // `self.shared` is the last Arc now (HTTP and workers joined), so
        // dropping it drops the AgencyStore and releases its lease.
    }
}

/// Route one request. Pure with respect to the HTTP layer: all state
/// lives in `shared`. Every response — every route, including unknown
/// paths — lands in exactly one HTTP status-class counter.
fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    let response = route_inner(shared, request);
    let service = &shared.metrics.service;
    match response.status / 100 {
        2 => service.http_2xx.inc(),
        4 => service.http_4xx.inc(),
        _ => service.http_5xx.inc(),
    }
    response
}

fn route_inner(shared: &Arc<Shared>, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["seasons"]) => create_season(shared, &request.body),
        ("POST", ["seasons", name, "releases"]) => submit_release(shared, name, &request.body),
        ("POST", ["seasons", name, "close"]) => close_season(shared, name),
        ("GET", ["releases", id]) => release_status(shared, id),
        ("GET", ["audit"]) => audit(shared),
        ("GET", ["metrics"]) => metrics_view(shared, request),
        _ => Response::error(404, "no such route"),
    }
}

fn parse_body<T: Deserialize>(body: &str) -> Result<T, Response> {
    serde_json::from_str(body).map_err(|e| Response::error(400, &format!("invalid body: {e}")))
}

fn json_ok<T: serde::Serialize>(status: u16, value: &T) -> Response {
    Response::json(
        status,
        serde_json::to_string(value).expect("response serialization is infallible"),
    )
}

/// Map a [`StoreError`] onto the API's status vocabulary.
fn store_error(e: &StoreError) -> Response {
    let status = match e {
        StoreError::Locked { .. } => 423,
        StoreError::AlreadyExists { .. }
        | StoreError::AgencyBudget { .. }
        | StoreError::Refused { .. }
        | StoreError::SeasonClosed { .. }
        | StoreError::Inconsistent { .. } => 409,
        StoreError::NotAStore { .. } => 404,
        _ => 500,
    };
    Response::error(status, &e.to_string())
}

fn create_season(shared: &Arc<Shared>, body: &str) -> Response {
    let create: SeasonCreate = match parse_body(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    // Panel services bind every season to a quarter at creation; the
    // binding is part of the season's identity and persists.
    let quarter = match (shared.panel, create.quarter) {
        (true, None) => {
            return Response::error(
                400,
                "panel services require `quarter`: which quarter this season releases",
            )
        }
        (true, Some(q)) if (q as usize) >= shared.quarters.len() => {
            return Response::error(
                400,
                &format!(
                    "quarter {q} out of range: the panel has {} quarters",
                    shared.quarters.len()
                ),
            )
        }
        (true, Some(q)) => Some(q as usize),
        (false, Some(_)) => {
            return Response::error(
                400,
                "this service serves a single snapshot: seasons take no `quarter`",
            )
        }
        (false, None) => None,
    };
    let mut agency = shared.agency.lock().expect("agency lock poisoned");
    match agency.create_season(&create.name, create.budget) {
        // Drop the returned store immediately: its write lease must be
        // free for the season's worker to claim on first submission.
        Ok(store) => {
            drop(store);
            if let Some(q) = quarter {
                let mut map = shared.quarter_map.lock().expect("quarter map poisoned");
                map.insert(create.name.clone(), q);
                persist_quarter_map(shared, &map);
            }
            json_ok(
                200,
                &SeasonCreated {
                    name: create.name,
                    budget: create.budget,
                    remaining_epsilon: agency.remaining_epsilon(),
                },
            )
        }
        Err(e) => store_error(&e),
    }
}

fn submit_release(shared: &Arc<Shared>, name: &str, body: &str) -> Response {
    let submission: ReleaseSubmission = match parse_body(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    // Non-finite budgets must be refused at the boundary: the mechanism
    // constructors (correctly) treat them as programmer error and panic,
    // but over the wire they are client error.
    let budget = submission.budget;
    let budget_valid = budget.alpha.is_finite()
        && budget.alpha > 0.0
        && budget.epsilon.is_finite()
        && budget.epsilon > 0.0
        && budget.delta.is_finite()
        && budget.delta >= 0.0;
    if !budget_valid {
        return Response::error(400, "budget parameters must be finite and positive");
    }
    let is_flows = submission.kind == RequestKind::Flows;
    // Resolve the quarter (panel mode), the effective seed, and the
    // digest that keys the release: the quarter's for levels, the
    // `(q-1, q)` pair's for flows. The consistent-over-time seed rewrite
    // happens HERE, before the cache key — so level-vs-change coherence
    // and cacheability agree for every path into the pipeline.
    let (quarter, seed, key_digest) = if shared.panel {
        let bound = {
            let map = shared.quarter_map.lock().expect("quarter map poisoned");
            map.get(name).copied()
        };
        let Some(q) = bound else {
            return Response::error(
                404,
                &format!("no season named `{name}` bound to a panel quarter"),
            );
        };
        if is_flows && q == 0 {
            return Response::error(
                400,
                "flow releases need a before-quarter: the panel's base quarter has none",
            );
        }
        let digest = if is_flows {
            dataset_pair_digest(shared.quarters[q - 1].digest, shared.quarters[q].digest)
        } else {
            shared.quarters[q].digest
        };
        (q, panel_quarter_seed(submission.seed, q), digest)
    } else {
        if is_flows {
            return Response::error(
                400,
                "flow releases need a quarterly panel: this service serves a single snapshot",
            );
        }
        (0, submission.seed, shared.quarters[0].digest)
    };
    let request = submission.to_request().seed(seed);
    // Validate the rest up front: an unpriceable request 400s here and
    // never reaches a queue (or the ledger).
    if let Err(e) = request.plan() {
        return Response::error(400, &format!("invalid release request: {e}"));
    }
    // The release's full public identity — checked against the cache
    // BEFORE any worker is resolved. A hit is answered from released
    // bits alone: zero ε, zero tabulation, nothing confidential touched.
    let key = ReleaseKey {
        dataset_digest: key_digest,
        kind: submission.kind,
        spec: submission.spec.clone(),
        mechanism: submission.mechanism,
        budget: submission.budget,
        budget_is_per_cell: submission.budget_is_per_cell,
        filter: submission.filter.as_ref().map(FilterExpr::normalized),
        integerized: submission.integerize,
        seed,
    };
    if let Some(artifact) = shared.cache.load(&key) {
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.metrics.caches.public_hits.inc();
        let id = push_record(
            shared,
            ReleaseRecord {
                season: String::new(),
                key: Some(key),
                state: ReleaseState::Complete {
                    artifact: Arc::new(artifact),
                    cached: true,
                },
            },
        );
        return json_ok(
            200,
            &SubmitReceipt {
                id,
                status: "complete".to_string(),
                cached: true,
            },
        );
    }
    // Cache miss: the request crosses to the confidential side through
    // the season's worker queue.
    shared.metrics.caches.public_misses.inc();
    let agency = shared.agency.lock().expect("agency lock poisoned");
    if agency.meta_ledger().reservation(name).is_none() {
        return Response::error(404, &format!("no season named `{name}`"));
    }
    // A closed (or closing — the refund is already frozen) season can
    // never charge again; refuse before resolving a worker.
    if agency.meta_ledger().closure(name).is_some() {
        return store_error(&StoreError::SeasonClosed {
            name: name.to_string(),
        });
    }
    let mut workers = shared.workers.lock().expect("workers lock poisoned");
    if !workers.contains_key(name) {
        match spawn_worker(shared, &agency, name, quarter) {
            Ok(worker) => {
                workers.insert(name.to_string(), worker);
            }
            Err(e) => return store_error(&e),
        }
    }
    let worker = workers.get(name).expect("inserted just above");
    let id = push_record(
        shared,
        ReleaseRecord {
            season: name.to_string(),
            key: Some(key),
            state: ReleaseState::Queued,
        },
    );
    // Enqueue accounting before the send: the worker may dequeue (and
    // decrement) the instant the job lands.
    worker.pending.fetch_add(1, Ordering::Relaxed);
    shared.metrics.service.releases_enqueued.inc();
    if worker.tx.send(Job::Release { id, request }).is_err() {
        // The job never reached the queue: resolve it terminally so the
        // enqueued/executed pair stays balanced.
        worker.pending.fetch_sub(1, Ordering::Relaxed);
        shared.metrics.service.releases_executed.inc();
        set_state(
            shared,
            id,
            ReleaseState::Failed {
                error: "season worker is gone".to_string(),
            },
        );
        return Response::error(500, "season worker is gone");
    }
    json_ok(
        202,
        &SubmitReceipt {
            id,
            status: "queued".to_string(),
            cached: false,
        },
    )
}

/// `POST /seasons/{name}/close`: stop the season's worker (it owns the
/// season's write lease), then run the audited two-phase close — freeze
/// the refund in the meta-ledger, seal the season manifest, credit the
/// refund to the agency cap — and return the
/// [`ClosureReceipt`](eree_core::ClosureReceipt).
/// Idempotent: closing an already-closed season replays its recorded
/// receipt with `already_closed: true`.
fn close_season(shared: &Arc<Shared>, name: &str) -> Response {
    // Lock order: `agency` before `workers`. Holding `agency` for the
    // whole close serializes it against submissions, which spawn workers
    // under the same lock — no new worker can claim the season's lease
    // between the join below and the close itself.
    let mut agency = shared.agency.lock().expect("agency lock poisoned");
    let worker = shared
        .workers
        .lock()
        .expect("workers lock poisoned")
        .remove(name);
    if let Some(worker) = worker {
        // Queued releases drain first — Shutdown lands behind them — and
        // the join drops the worker's SeasonStore, releasing the lease
        // the close is about to claim.
        let _ = worker.tx.send(Job::Shutdown);
        let _ = worker.join.join();
    }
    match agency.close_season(name) {
        Ok(receipt) => {
            // Leave the sealed summary as the season's retired view so
            // the audit reports it closed with its spend final.
            if let Some(summary) = agency.seasons().iter().find(|s| s.name == name).cloned() {
                shared
                    .retired
                    .lock()
                    .expect("retired views poisoned")
                    .insert(name.to_string(), summary);
            }
            json_ok(200, &receipt)
        }
        Err(e) => store_error(&e),
    }
}

fn release_status(shared: &Arc<Shared>, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "release id must be an integer");
    };
    let registry = shared.registry.lock().expect("registry lock poisoned");
    let Some(record) = registry.get(id as usize) else {
        return Response::error(404, &format!("no release with id {id}"));
    };
    let view = match &record.state {
        ReleaseState::Queued => ReleaseStatusView {
            id,
            season: record.season.clone(),
            status: "queued".to_string(),
            cached: false,
            error: None,
            artifact: None,
        },
        ReleaseState::Complete { artifact, cached } => ReleaseStatusView {
            id,
            season: record.season.clone(),
            status: "complete".to_string(),
            cached: *cached,
            error: None,
            artifact: Some(artifact.as_ref().clone()),
        },
        ReleaseState::Failed { error } => ReleaseStatusView {
            id,
            season: record.season.clone(),
            status: "failed".to_string(),
            cached: false,
            error: Some(error.clone()),
            artifact: None,
        },
    };
    json_ok(200, &view)
}

fn audit(shared: &Arc<Shared>) -> Response {
    let agency = shared.agency.lock().expect("agency lock poisoned");
    let workers = shared.workers.lock().expect("workers lock poisoned");
    let retired = shared.retired.lock().expect("retired views poisoned");
    let mut seasons = Vec::new();
    let mut stats = TabulationStats::default();
    for reservation in agency.meta_ledger().reservations() {
        match workers.get(&reservation.name) {
            // A live worker's view is fresher than the agency's (the
            // worker owns the season store; the agency read it at open).
            Some(worker) => {
                let view = worker.view.lock().expect("season view poisoned");
                seasons.push(view.summary.clone());
                stats.computed += view.stats.computed;
                stats.hits += view.stats.hits;
                stats.disk_hits += view.stats.disk_hits;
            }
            // A retired worker left its final summary behind. The
            // meta-ledger stays authoritative for closure: a worker that
            // retired while a close raced in may have recorded a
            // pre-close view.
            None => match retired.get(&reservation.name) {
                Some(summary) => {
                    let mut summary = summary.clone();
                    summary.closed = summary.closed
                        || agency
                            .meta_ledger()
                            .closure(&reservation.name)
                            .is_some_and(|c| c.sealed);
                    seasons.push(summary);
                }
                None => seasons.push(
                    agency
                        .seasons()
                        .iter()
                        .find(|s| s.name == reservation.name)
                        .cloned()
                        .unwrap_or(SeasonSummary {
                            name: reservation.name.clone(),
                            budget: reservation.budget,
                            spent_epsilon: 0.0,
                            spent_delta: 0.0,
                            completed: 0,
                            materialized: false,
                            closed: false,
                        }),
                ),
            },
        }
    }
    let releases = shared
        .registry
        .lock()
        .expect("registry lock poisoned")
        .len() as u64;
    let metrics = snapshot_with_queues(&agency, &workers);
    let view = AuditView {
        cap: *agency.cap(),
        reserved_epsilon: agency.meta_ledger().reserved_epsilon(),
        remaining_epsilon: agency.remaining_epsilon(),
        refunded_epsilon: agency.refunded_epsilon(),
        spent_epsilon: seasons.iter().map(|s| s.spent_epsilon).sum(),
        seasons,
        releases,
        cache_hits: shared.cache_hits.load(Ordering::Relaxed),
        cache_entries: shared.cache.len() as u64,
        tabulations: stats,
        metrics,
    };
    json_ok(200, &view)
}

/// `GET /metrics`: the agency's canonical [`MetricsSnapshot`] with the
/// budget gauges refreshed from the meta-ledger and the live per-season
/// queue depths filled in. `?format=openmetrics` selects the Prometheus
/// text exposition of the same snapshot; the default (or `format=json`)
/// is the JSON payload.
fn metrics_view(shared: &Arc<Shared>, request: &Request) -> Response {
    let snapshot = {
        let agency = shared.agency.lock().expect("agency lock poisoned");
        let workers = shared.workers.lock().expect("workers lock poisoned");
        snapshot_with_queues(&agency, &workers)
    };
    match request.query_param("format") {
        Some("openmetrics") => Response::text(
            200,
            eree_core::metrics::OPENMETRICS_CONTENT_TYPE,
            snapshot.to_openmetrics(),
        ),
        Some("json") | None => json_ok(200, &snapshot),
        Some(other) => Response::error(400, &format!("unknown metrics format {other:?}")),
    }
}

/// Take the agency snapshot and graft on the per-season queue depths
/// only the service knows. Called with both locks held, in the
/// documented `agency` → `workers` order.
fn snapshot_with_queues(
    agency: &AgencyStore,
    workers: &BTreeMap<String, SeasonWorker>,
) -> MetricsSnapshot {
    let mut snapshot = agency.metrics_snapshot();
    snapshot.service.season_queues = workers
        .iter()
        .map(|(name, worker)| SeasonQueue {
            season: name.clone(),
            depth: worker.pending.load(Ordering::Relaxed),
        })
        .collect();
    snapshot
}

/// Append a record to the registry and persist it. Returns the new id.
fn push_record(shared: &Shared, record: ReleaseRecord) -> u64 {
    let mut registry = shared.registry.lock().expect("registry lock poisoned");
    registry.push(record);
    persist_registry(shared, &registry);
    (registry.len() - 1) as u64
}

fn set_state(shared: &Shared, id: u64, state: ReleaseState) {
    let mut registry = shared.registry.lock().expect("registry lock poisoned");
    if let Some(record) = registry.get_mut(id as usize) {
        record.state = state;
        persist_registry(shared, &registry);
    }
}

/// Rewrite the persistent registry under the registry lock. Best-effort:
/// a failed write loses only restart visibility, never a release (every
/// admission is already durable in the season store and public cache).
fn persist_registry(shared: &Shared, registry: &[ReleaseRecord]) {
    let file = RegistryFile {
        format: SERVICE_FORMAT_VERSION,
        records: registry
            .iter()
            .map(|r| PersistedRecord {
                season: r.season.clone(),
                status: match &r.state {
                    ReleaseState::Queued => "queued",
                    ReleaseState::Complete { .. } => "complete",
                    ReleaseState::Failed { .. } => "failed",
                }
                .to_string(),
                cached: matches!(&r.state, ReleaseState::Complete { cached: true, .. }),
                error: match &r.state {
                    ReleaseState::Failed { error } => Some(error.clone()),
                    _ => None,
                },
                key: r.key.clone(),
            })
            .collect(),
    };
    let _ = write_json_file(&shared.registry_path, &file);
}

/// Rehydrate the release-id registry from `releases.json`: completed
/// releases reload their artifacts from the public cache (every service
/// release is declarative, so the key always exists); releases that were
/// still queued at the crash report as failed — their queue was memory.
fn load_registry(path: &Path, cache: &ReleaseCache) -> Vec<ReleaseRecord> {
    let Ok(json) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(file) = serde_json::from_str::<RegistryFile>(&json) else {
        return Vec::new();
    };
    if file.format != SERVICE_FORMAT_VERSION {
        return Vec::new();
    }
    file.records
        .into_iter()
        .map(|r| {
            let state = match r.status.as_str() {
                "complete" => match r.key.as_ref().and_then(|k| cache.load(k)) {
                    Some(artifact) => ReleaseState::Complete {
                        artifact: Arc::new(artifact),
                        cached: r.cached,
                    },
                    None => ReleaseState::Failed {
                        error: "released artifact is no longer in the public cache".to_string(),
                    },
                },
                "failed" => ReleaseState::Failed {
                    error: r.error.unwrap_or_else(|| "unrecorded failure".to_string()),
                },
                _ => ReleaseState::Failed {
                    error: "the service restarted before this queued release ran".to_string(),
                },
            };
            ReleaseRecord {
                season: r.season,
                key: r.key,
                state,
            }
        })
        .collect()
}

/// Persist the season → quarter bindings under the quarter-map lock.
fn persist_quarter_map(shared: &Shared, map: &BTreeMap<String, usize>) {
    let file = QuartersFile {
        format: SERVICE_FORMAT_VERSION,
        bindings: map
            .iter()
            .map(|(season, &quarter)| QuarterBinding {
                season: season.clone(),
                quarter: quarter as u64,
            })
            .collect(),
    };
    let _ = write_json_file(&shared.quarters_path, &file);
}

/// Load the season → quarter bindings, refusing out-of-range quarters
/// (the panel shrank, or the file belongs to a different panel).
fn load_quarter_map(path: &Path, quarters: usize) -> Result<BTreeMap<String, usize>, ServiceError> {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(_) => return Ok(BTreeMap::new()),
    };
    let file: QuartersFile = serde_json::from_str(&json).map_err(|e| {
        ServiceError::Store(StoreError::Inconsistent {
            detail: format!(
                "unreadable panel season bindings at {}: {e}",
                path.display()
            ),
        })
    })?;
    if file.format != SERVICE_FORMAT_VERSION {
        return Err(ServiceError::Store(StoreError::Inconsistent {
            detail: format!("panel season bindings have format {}", file.format),
        }));
    }
    let mut map = BTreeMap::new();
    for binding in file.bindings {
        if binding.quarter as usize >= quarters {
            return Err(ServiceError::Store(StoreError::Inconsistent {
                detail: format!(
                    "season `{}` is bound to quarter {} but the panel has {} quarters",
                    binding.season, binding.quarter, quarters
                ),
            }));
        }
        map.insert(binding.season, binding.quarter as usize);
    }
    Ok(map)
}

/// Durable JSON persistence for the service's own registries: the core
/// store's fsynced write-temp-then-rename, whose temp naming the agency's
/// open-time sweep recognizes — a crashed service leaves no stray temp
/// files the next open cannot clean up.
fn write_json_file<T: serde::Serialize>(path: &Path, value: &T) -> Result<(), StoreError> {
    eree_core::store::write_json_atomic(path, value)
}

/// Open season `name` (claiming its write lease), rebuild its plan from
/// persisted provenance, and start its worker thread. Called under the
/// `agency` and `workers` locks.
fn spawn_worker(
    shared: &Arc<Shared>,
    agency: &AgencyStore,
    name: &str,
    quarter: usize,
) -> Result<SeasonWorker, StoreError> {
    let store = agency.open_season(name)?;
    // A panel season that has already run is pinned to its quarter's
    // snapshot; a binding that disagrees (edited bindings file, wrong
    // panel) must be refused before the worker charges anything.
    if let Some(pinned) = store.dataset_digest() {
        if shared.panel && pinned != shared.quarters[quarter].digest {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "season `{name}` is pinned to a snapshot other than its bound quarter \
                     {quarter}"
                ),
            });
        }
    }
    let mut plan = Vec::with_capacity(store.completed());
    for release in store.releases() {
        match ReleaseRequest::from_provenance(&release.request) {
            Some(request) => plan.push(request),
            None => {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "season `{name}` holds a closure-filtered release ({}) whose plan \
                         cannot be reconstructed; it cannot be served",
                        release.request.description
                    ),
                })
            }
        }
    }
    let view = Arc::new(Mutex::new(SeasonView {
        summary: SeasonSummary {
            name: name.to_string(),
            budget: *store.ledger().budget(),
            spent_epsilon: store.ledger().spent_epsilon(),
            spent_delta: store.ledger().spent_delta(),
            completed: store.completed(),
            materialized: true,
            closed: store.is_closed(),
        },
        stats: TabulationStats::default(),
    }));
    // The worker replaces any retired-state summary for this season.
    shared
        .retired
        .lock()
        .expect("retired views poisoned")
        .remove(name);
    let q = &shared.quarters[quarter];
    let cache = TabulationCache::with_store(q.truths.clone()).with_shared_index(q.index());
    let (tx, rx) = mpsc::channel::<Job>();
    let pending = Arc::new(AtomicU64::new(0));
    shared.metrics.service.worker_spawns.inc();
    let ctx = WorkerCtx {
        shared: Arc::clone(shared),
        name: name.to_string(),
        quarter,
        store,
        plan,
        cache,
        view: Arc::clone(&view),
        pending: Arc::clone(&pending),
    };
    let join = std::thread::spawn(move || season_worker(ctx, rx));
    Ok(SeasonWorker {
        tx,
        join,
        view,
        pending,
    })
}

/// Everything one season worker owns: the [`SeasonStore`] (and with it
/// the season's write lease), the replayed plan, and the tabulation
/// cache shared with the quarter.
struct WorkerCtx {
    shared: Arc<Shared>,
    name: String,
    quarter: usize,
    store: SeasonStore,
    plan: Vec<ReleaseRequest>,
    cache: TabulationCache,
    view: Arc<Mutex<SeasonView>>,
    /// Shared with the [`SeasonWorker`] handle: enqueued-but-unexecuted
    /// jobs, decremented after each release resolves.
    pending: Arc<AtomicU64>,
}

impl WorkerCtx {
    /// Execute one queued release and record the outcome.
    fn run_release(&mut self, id: u64, request: ReleaseRequest) {
        self.plan.push(request);
        let quarter = &self.shared.quarters[self.quarter];
        let before = (self.quarter > 0).then(|| {
            let b = &self.shared.quarters[self.quarter - 1];
            (b.dataset.as_ref(), b.digest)
        });
        let result = self.store.run_panel_cached_with_digest(
            before,
            &quarter.dataset,
            quarter.digest,
            &self.plan,
            &mut self.cache,
        );
        match result {
            Ok(report) => {
                match self.store.load_artifact(self.store.completed() - 1) {
                    Ok(artifact) => {
                        let artifact = Arc::new(artifact);
                        // Publish to the released-artifact cache under
                        // the digest that keys this release: the pair
                        // digest for flows, the quarter's otherwise.
                        // Every service release has a declarative
                        // identity, so the key always exists; a
                        // cache-write failure is only a lost
                        // optimization, never a lost release.
                        let digest = if artifact.request.kind == RequestKind::Flows {
                            dataset_pair_digest(
                                self.shared.quarters[self.quarter - 1].digest,
                                quarter.digest,
                            )
                        } else {
                            quarter.digest
                        };
                        if let Some(key) = ReleaseKey::of(&artifact.request, digest) {
                            let _ = self.shared.cache.save(&key, &artifact);
                        }
                        set_state(
                            &self.shared,
                            id,
                            ReleaseState::Complete {
                                artifact,
                                cached: false,
                            },
                        )
                    }
                    Err(e) => set_state(
                        &self.shared,
                        id,
                        ReleaseState::Failed {
                            error: format!("release persisted but failed to load back: {e}"),
                        },
                    ),
                }
                let mut v = self.view.lock().expect("season view poisoned");
                v.stats.computed += report.tabulations_computed;
                v.stats.hits += report.tabulation_hits;
                v.stats.disk_hits += report.tabulation_disk_hits;
            }
            Err(e) => {
                // The refusal recorded nothing: keep the plan in lockstep
                // with the store.
                self.plan.pop();
                set_state(
                    &self.shared,
                    id,
                    ReleaseState::Failed {
                        error: e.to_string(),
                    },
                );
            }
        }
        let mut v = self.view.lock().expect("season view poisoned");
        v.summary.spent_epsilon = self.store.ledger().spent_epsilon();
        v.summary.spent_delta = self.store.ledger().spent_delta();
        v.summary.completed = self.store.completed();
    }
}

/// The per-season worker loop: owns the [`SeasonStore`] (and its lease),
/// executing queued releases strictly in order, until shutdown — or,
/// with an idle timeout configured, until the season goes quiet, at
/// which point the worker retires itself and releases the lease.
fn season_worker(mut ctx: WorkerCtx, rx: mpsc::Receiver<Job>) {
    let idle = ctx.shared.idle_timeout;
    loop {
        let job = match idle {
            None => match rx.recv() {
                Ok(job) => job,
                Err(_) => break,
            },
            Some(timeout) => match rx.recv_timeout(timeout) {
                Ok(job) => job,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let shared = Arc::clone(&ctx.shared);
                    let mut workers = shared.workers.lock().expect("workers lock poisoned");
                    // A submission can race the timeout: if one landed
                    // while we were acquiring the lock, keep serving.
                    match rx.try_recv() {
                        Ok(job) => {
                            drop(workers);
                            job
                        }
                        Err(_) => {
                            // Retire. Leave the final audit summary
                            // behind, then — still under the workers
                            // lock, so no submission can race a respawn
                            // against a held lease — drop the season
                            // store, releasing the season's write lease.
                            let summary = ctx
                                .view
                                .lock()
                                .expect("season view poisoned")
                                .summary
                                .clone();
                            shared
                                .retired
                                .lock()
                                .expect("retired views poisoned")
                                .insert(ctx.name.clone(), summary);
                            workers.remove(&ctx.name);
                            drop(ctx);
                            shared.metrics.service.worker_retirements.inc();
                            return;
                        }
                    }
                }
            },
        };
        match job {
            Job::Shutdown => break,
            Job::Release { id, request } => {
                ctx.run_release(id, request);
                ctx.pending.fetch_sub(1, Ordering::Relaxed);
                ctx.shared.metrics.service.releases_executed.inc();
            }
        }
    }
    // Shutdown and close both retire the worker; count them with the
    // idle path so spawns − retirements is always the live worker count.
    ctx.shared.metrics.service.worker_retirements.inc();
    // `ctx.store` drops here: the season's write lease is released.
}
