//! Loopback test of the audited season close: `POST /seasons/{name}/close`
//! drains the season's worker, seals the season, and refunds the unspent
//! remainder to the agency cap through the meta-ledger's two-phase record.
//! The refund is visible in `GET /audit`, survives a service restart, and
//! a closed season refuses all further work with a typed 409.

use eree_core::definitions::PrivacyParams;
use eree_core::engine::RequestKind;
use eree_core::mechanisms::MechanismKind;
use eree_service::{
    Client, ClientError, ReleaseService, ReleaseSubmission, RetryPolicy, ServiceConfig,
};
use lodes::{Dataset, Generator, GeneratorConfig};
use std::fs;
use std::path::PathBuf;
use std::time::Duration;
use tabulate::{MarginalSpec, WorkplaceAttr};

const ALPHA: f64 = 0.1;
const WAIT: Duration = Duration::from_secs(60);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eree-service-close-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Dataset {
    Generator::new(GeneratorConfig::test_small(91)).generate()
}

fn county() -> MarginalSpec {
    MarginalSpec::new(vec![WorkplaceAttr::County], vec![])
}

fn submission(epsilon: f64, seed: u64) -> ReleaseSubmission {
    ReleaseSubmission {
        kind: RequestKind::Marginal,
        spec: county(),
        mechanism: MechanismKind::LogLaplace,
        budget: PrivacyParams::pure(ALPHA, epsilon),
        budget_is_per_cell: false,
        filter: None,
        integerize: false,
        seed,
        description: None,
    }
}

fn status_of(result: &Result<impl std::fmt::Debug, ClientError>) -> u16 {
    match result {
        Err(ClientError::Api { status, .. }) => *status,
        other => panic!("expected an API refusal, got {other:?}"),
    }
}

#[test]
fn close_refunds_the_unspent_remainder_durably() {
    let dir = tmp_dir("refund");
    let cap = PrivacyParams::pure(ALPHA, 4.0);
    let service =
        ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap)).expect("service starts");
    // The retrying client rides out transient contention (e.g. a lease
    // mid-handoff) without changing any permanent answer below.
    let client = Client::new(service.addr()).with_retry(RetryPolicy::default());

    client
        .create_season("s", PrivacyParams::pure(ALPHA, 2.0))
        .expect("season fits under the cap");
    let receipt = client.submit("s", &submission(0.5, 7)).expect("submit");
    let done = client.wait_for(receipt.id, WAIT).expect("release runs");
    assert_eq!(done.status, "complete", "error: {:?}", done.error);

    let before = client.audit().expect("audit before close");
    assert_eq!(before.refunded_epsilon, 0.0);
    let spent = before.spent_epsilon;
    assert!(spent > 0.0, "the release charged something");
    let season_before = &before.seasons[0];
    assert!(!season_before.closed);

    // Close: the worker drains, the season seals, the remainder comes
    // back to the cap. refund = reserved − spent.
    let closed = client.close_season("s").expect("close succeeds");
    assert!(!closed.already_closed);
    assert!(
        (closed.refund_epsilon - (2.0 - spent)).abs() < 1e-9,
        "refund {} != reserved 2.0 − spent {spent}",
        closed.refund_epsilon
    );
    assert!(
        (closed.remaining_epsilon - (cap.epsilon - spent)).abs() < 1e-9,
        "after the refund only the spend stays charged against the cap"
    );

    // The audit shows the refund and the sealed season.
    let after = client.audit().expect("audit after close");
    assert!((after.refunded_epsilon - closed.refund_epsilon).abs() < 1e-9);
    assert!((after.remaining_epsilon - closed.remaining_epsilon).abs() < 1e-9);
    assert_eq!(after.spent_epsilon, spent, "the spend itself never refunds");
    assert!(after.seasons[0].closed, "audit reports the season sealed");

    // A closed season refuses everything with a typed 409: submissions,
    // and re-creating a season under the retired name.
    assert_eq!(status_of(&client.submit("s", &submission(0.1, 8))), 409);
    assert_eq!(
        status_of(&client.create_season("s", PrivacyParams::pure(ALPHA, 0.5))),
        409
    );
    // Closing again is idempotent: the recorded receipt replays.
    let again = client.close_season("s").expect("re-close replays");
    assert!(again.already_closed);
    assert!((again.refund_epsilon - closed.refund_epsilon).abs() < 1e-9);
    // Closing a season that never existed is a refusal, not a crash.
    assert_eq!(status_of(&client.close_season("ghost")), 409);

    // The refunded headroom is real: a new season over what the cap had
    // left before the close, but within it after, is accepted.
    client
        .create_season("t", PrivacyParams::pure(ALPHA, cap.epsilon - spent - 0.5))
        .expect("the refunded budget is reservable again");

    service.shutdown();

    // Restart: the closure and its refund are durable meta-ledger state.
    let service = ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap))
        .expect("service reopens the agency");
    let client = Client::new(service.addr()).with_retry(RetryPolicy::default());
    let replayed = client.audit().expect("audit after restart");
    assert!((replayed.refunded_epsilon - closed.refund_epsilon).abs() < 1e-9);
    let s = replayed
        .seasons
        .iter()
        .find(|s| s.name == "s")
        .expect("closed season still audited");
    assert!(s.closed, "the seal survives a restart");
    assert_eq!(status_of(&client.submit("s", &submission(0.1, 9))), 409);
    let replay = client.close_season("s").expect("close is still idempotent");
    assert!(replay.already_closed);

    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn closing_an_unmaterialized_season_refunds_the_whole_reservation() {
    let dir = tmp_dir("unmaterialized");
    let cap = PrivacyParams::pure(ALPHA, 1.0);
    let service =
        ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap)).expect("service starts");
    let client = Client::new(service.addr());

    // Reserved but never submitted to: no season directory exists, only
    // the meta-ledger reservation. Closing refunds all of it.
    client
        .create_season("idle", PrivacyParams::pure(ALPHA, 0.75))
        .expect("reservation fits");
    let receipt = client.close_season("idle").expect("close of idle season");
    assert!((receipt.refund_epsilon - 0.75).abs() < 1e-9);
    assert!((receipt.remaining_epsilon - cap.epsilon).abs() < 1e-9);
    let audit = client.audit().expect("audit");
    assert!((audit.refunded_epsilon - 0.75).abs() < 1e-9);
    assert!(audit.seasons[0].closed);

    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
