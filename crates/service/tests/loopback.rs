//! Loopback integration test for the release service: concurrent tenants
//! over one agency, cap enforcement end to end, the public cache's
//! zero-ε repeat path, the agency write lease, and durable replay across
//! a stop/start cycle.

use eree_core::agency::AgencyStore;
use eree_core::definitions::PrivacyParams;
use eree_core::engine::RequestKind;
use eree_core::mechanisms::MechanismKind;
use eree_core::StoreError;
use eree_service::{Client, ReleaseService, ReleaseSubmission, ServiceConfig};
use lodes::{Dataset, Generator, GeneratorConfig};
use std::fs;
use std::path::PathBuf;
use std::time::Duration;
use tabulate::{MarginalSpec, WorkerAttr, WorkplaceAttr};

const ALPHA: f64 = 0.1;
const WAIT: Duration = Duration::from_secs(60);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eree-service-it-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Dataset {
    Generator::new(GeneratorConfig::test_small(55)).generate()
}

fn county() -> MarginalSpec {
    MarginalSpec::new(vec![WorkplaceAttr::County], vec![])
}

fn county_by_sector() -> MarginalSpec {
    MarginalSpec::new(vec![WorkplaceAttr::County], vec![WorkerAttr::Age])
}

fn submission(spec: MarginalSpec, epsilon: f64, seed: u64) -> ReleaseSubmission {
    ReleaseSubmission {
        kind: RequestKind::Marginal,
        spec,
        mechanism: MechanismKind::LogLaplace,
        budget: PrivacyParams::pure(ALPHA, epsilon),
        budget_is_per_cell: false,
        filter: None,
        integerize: false,
        seed,
        description: None,
    }
}

#[test]
fn concurrent_tenants_share_one_agency_under_the_cap() {
    let dir = tmp_dir("concurrent");
    let cap = PrivacyParams::pure(ALPHA, 2.0);
    let service =
        ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap)).expect("service starts");
    let client = Client::new(service.addr());

    // While the service runs, the agency directory is write-leased: a
    // second writer (library or service) is refused with a clear error.
    match AgencyStore::open(&dir) {
        Err(StoreError::Locked { holder_pid, .. }) => {
            assert_eq!(holder_pid, std::process::id(), "lease names the holder")
        }
        other => panic!("second writer must be refused, got {other:?}"),
    }

    // Two tenants reserve their seasons up front; a third that would
    // overdraw the agency cap is refused before anything exists.
    client
        .create_season("tenant-a", PrivacyParams::pure(ALPHA, 1.0))
        .expect("tenant-a fits under the cap");
    client
        .create_season("tenant-b", PrivacyParams::pure(ALPHA, 0.8))
        .expect("tenant-b fits under the cap");
    let refused = client.create_season("tenant-c", PrivacyParams::pure(ALPHA, 5.0));
    match refused {
        Err(eree_service::ClientError::Api { status, .. }) => assert_eq!(status, 409),
        other => panic!("over-cap season must 409, got {other:?}"),
    }

    // Both tenants submit concurrently from their own threads. Within a
    // season the worker serializes; across seasons they run in parallel.
    std::thread::scope(|scope| {
        for (season, base_seed) in [("tenant-a", 0xA0u64), ("tenant-b", 0xB0u64)] {
            scope.spawn(move || {
                for i in 0..3u64 {
                    let spec = if i % 2 == 0 {
                        county()
                    } else {
                        county_by_sector()
                    };
                    let receipt = client
                        .submit(season, &submission(spec, 0.25, base_seed + i))
                        .expect("submit accepted");
                    assert!(!receipt.cached, "first-time requests are not cache hits");
                    let done = client.wait_for(receipt.id, WAIT).expect("release finishes");
                    assert_eq!(done.status, "complete", "error: {:?}", done.error);
                    assert_eq!(done.season, season);
                    assert!(
                        done.artifact.is_some(),
                        "completed releases carry artifacts"
                    );
                }
            });
        }
    });

    // The audit view proves the budget hierarchy held under concurrency.
    let audit = client.audit().expect("audit");
    assert!(audit.reserved_epsilon <= cap.epsilon + 1e-9);
    assert_eq!(audit.seasons.len(), 2);
    for season in &audit.seasons {
        assert!(
            season.spent_epsilon <= season.budget.epsilon + 1e-9,
            "season {} spent {} over its {}",
            season.name,
            season.spent_epsilon,
            season.budget.epsilon
        );
        assert_eq!(season.completed, 3);
    }
    let spent_before = audit.spent_epsilon;
    let tabulations_before = audit.tabulations;
    assert!(tabulations_before.computed > 0, "real tabulation happened");
    assert_eq!(audit.cache_hits, 0);
    assert!(audit.cache_entries >= 6, "every release was published");

    // A release over the season's remaining budget fails cleanly — the
    // refusal is an answer, not a crash, and nothing is charged.
    let over = client
        .submit("tenant-a", &submission(county(), 0.9, 0xFF))
        .expect("submission is accepted for queuing");
    let failed = client.wait_for(over.id, WAIT).expect("refusal comes back");
    assert_eq!(failed.status, "failed");
    assert!(failed.error.is_some());

    // Repeat an identical request: answered from the public cache with
    // zero additional ε and zero tabulation — TabulationStats unchanged.
    let repeat = client
        .submit("tenant-a", &submission(county(), 0.25, 0xA0))
        .expect("repeat accepted");
    assert!(repeat.cached, "identical request must be a cache hit");
    assert_eq!(repeat.status, "complete");
    let cached_view = client.release(repeat.id).expect("cached release view");
    assert!(cached_view.cached);
    assert_eq!(cached_view.season, "", "cache hits never resolve a season");
    assert!(
        cached_view.artifact.is_some(),
        "hits carry the full artifact"
    );

    // The cache key ignores the submitting season entirely: the same
    // request "via tenant-b" is also a hit and charges tenant-b nothing.
    let cross = client
        .submit("tenant-b", &submission(county(), 0.25, 0xA0))
        .expect("cross-tenant repeat accepted");
    assert!(cross.cached);

    let audit_after = client.audit().expect("audit after repeats");
    assert_eq!(
        audit_after.spent_epsilon, spent_before,
        "repeats spent zero ε"
    );
    assert_eq!(audit_after.cache_hits, 2);
    assert_eq!(
        audit_after.tabulations.computed, tabulations_before.computed,
        "repeats tabulated nothing"
    );
    assert_eq!(audit_after.tabulations.hits, tabulations_before.hits);
    assert_eq!(
        audit_after.tabulations.disk_hits,
        tabulations_before.disk_hits
    );

    service.shutdown();

    // Shutdown released everything: the agency directory opens first try.
    drop(AgencyStore::open(&dir).expect("lease released on shutdown"));

    // Restart on the same directory: every admission was durable. The
    // meta-ledger, per-season spend, and the public cache all replay.
    let service = ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap))
        .expect("service reopens the same agency");
    let client = Client::new(service.addr());
    let replayed = client.audit().expect("audit after restart");
    assert_eq!(replayed.spent_epsilon, spent_before);
    assert_eq!(replayed.seasons.len(), 2);
    for season in &replayed.seasons {
        assert_eq!(season.completed, 3, "persisted releases replayed");
    }
    let hit = client
        .submit("tenant-a", &submission(county(), 0.25, 0xA0))
        .expect("repeat after restart");
    assert!(hit.cached, "the public cache is durable too");

    // A season resumes: the worker rebuilds its plan from persisted
    // provenance and appends release #4 on top of the replayed three.
    let fresh = client
        .submit("tenant-a", &submission(county_by_sector(), 0.2, 0xA9))
        .expect("new release after restart");
    assert!(!fresh.cached);
    let done = client
        .wait_for(fresh.id, WAIT)
        .expect("resumed season runs");
    assert_eq!(done.status, "complete", "error: {:?}", done.error);
    let final_audit = client.audit().expect("final audit");
    let tenant_a = final_audit
        .seasons
        .iter()
        .find(|s| s.name == "tenant-a")
        .expect("tenant-a summary");
    assert_eq!(tenant_a.completed, 4);
    assert!(tenant_a.spent_epsilon <= tenant_a.budget.epsilon + 1e-9);
    service.shutdown();

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_never_reach_the_ledger() {
    let dir = tmp_dir("bad-requests");
    let cap = PrivacyParams::pure(ALPHA, 1.0);
    let service =
        ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap)).expect("service starts");
    let client = Client::new(service.addr());

    // Unknown season → 404.
    match client.submit("nope", &submission(county(), 0.1, 1)) {
        Err(eree_service::ClientError::Api { status, .. }) => assert_eq!(status, 404),
        other => panic!("unknown season must 404, got {other:?}"),
    }
    // Duplicate season → 409.
    client
        .create_season("s", PrivacyParams::pure(ALPHA, 0.5))
        .expect("first create");
    match client.create_season("s", PrivacyParams::pure(ALPHA, 0.1)) {
        Err(eree_service::ClientError::Api { status, .. }) => assert_eq!(status, 409),
        other => panic!("duplicate season must 409, got {other:?}"),
    }
    // Unpriceable parameters → 400 before any queue. A zero-ε budget is
    // constructible over the wire (typed constructors refuse it), so it
    // must be refused at the service boundary, not panic a worker.
    let mut bad = submission(county(), 0.1, 1);
    bad.budget = serde_json::from_str(r#"{"alpha":0.1,"epsilon":0.0,"delta":0.0}"#)
        .expect("wire budgets bypass constructor validation");
    match client.submit("s", &bad) {
        Err(eree_service::ClientError::Api { status, .. }) => assert_eq!(status, 400),
        other => panic!("zero-budget must 400, got {other:?}"),
    }
    // Unknown release id → 404.
    match client.release(999) {
        Err(eree_service::ClientError::Api { status, .. }) => assert_eq!(status, 404),
        other => panic!("unknown release must 404, got {other:?}"),
    }

    let audit = client.audit().expect("audit");
    assert_eq!(audit.spent_epsilon, 0.0, "nothing was ever charged");
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
