//! Loopback test for `GET /metrics`: admission and denial counters over
//! HTTP, the zero-ε repeat path showing up as cache hits (and *only*
//! cache hits — family ε-spend stays bit-identical), and the durable
//! snapshot surviving a full service stop/start cycle.

use eree_core::definitions::PrivacyParams;
use eree_core::engine::RequestKind;
use eree_core::mechanisms::MechanismKind;
use eree_core::metrics::{FamilySnapshot, MetricsSnapshot};
use eree_service::{Client, ReleaseService, ReleaseSubmission, ServiceConfig};
use lodes::{Dataset, Generator, GeneratorConfig};
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tabulate::{MarginalSpec, WorkerAttr, WorkplaceAttr};

const ALPHA: f64 = 0.1;
const WAIT: Duration = Duration::from_secs(60);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eree-metrics-it-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Dataset {
    Generator::new(GeneratorConfig::test_small(55)).generate()
}

fn county() -> MarginalSpec {
    MarginalSpec::new(vec![WorkplaceAttr::County], vec![])
}

fn county_by_age() -> MarginalSpec {
    MarginalSpec::new(vec![WorkplaceAttr::County], vec![WorkerAttr::Age])
}

fn submission(spec: MarginalSpec, epsilon: f64, seed: u64) -> ReleaseSubmission {
    ReleaseSubmission {
        kind: RequestKind::Marginal,
        spec,
        mechanism: MechanismKind::LogLaplace,
        budget: PrivacyParams::pure(ALPHA, epsilon),
        budget_is_per_cell: false,
        filter: None,
        integerize: false,
        seed,
        description: None,
    }
}

fn family<'a>(snapshot: &'a MetricsSnapshot, label: &str) -> &'a FamilySnapshot {
    snapshot
        .families
        .iter()
        .find(|f| f.family == label)
        .expect("snapshot carries every family")
}

/// Poll `/metrics` until the work queue has drained (the executed counter
/// ticks a moment after the release's status flips to terminal).
fn drained(client: &Client) -> MetricsSnapshot {
    let deadline = Instant::now() + WAIT;
    loop {
        let snapshot = client.metrics().expect("GET /metrics");
        if snapshot.service.releases_enqueued == snapshot.service.releases_executed {
            return snapshot;
        }
        assert!(
            Instant::now() < deadline,
            "queue never drained: {snapshot:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn metrics_endpoint_counts_admissions_and_survives_restart() {
    let dir = tmp_dir("restart");
    let cap = PrivacyParams::pure(ALPHA, 2.0);
    let service =
        ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap)).expect("service starts");
    let client = Client::new(service.addr());
    client
        .create_season("s", PrivacyParams::pure(ALPHA, 1.0))
        .expect("season fits under the cap");

    // A fresh agency: budget gauges are live before any release.
    let empty = client.metrics().expect("GET /metrics");
    assert_eq!(empty.epsilon_cap.to_bits(), cap.epsilon.to_bits());
    assert_eq!(family(&empty, "marginal").accepted_total, 0);

    // One admitted release: the marginal family accepts it, prices it on
    // the latency histogram, and the worker pipeline counters balance.
    let receipt = client
        .submit("s", &submission(county(), 0.25, 7))
        .expect("submit accepted");
    let done = client.wait_for(receipt.id, WAIT).expect("release finishes");
    assert_eq!(done.status, "complete", "error: {:?}", done.error);
    let snapshot = drained(&client);
    let marginal = family(&snapshot, "marginal");
    assert_eq!(marginal.accepted_total, 1);
    assert_eq!(marginal.denied_total, 0);
    assert!(marginal.latency.count >= 1, "admissions are timed");
    assert!(marginal.epsilon_spent > 0.0);
    assert_eq!(snapshot.service.releases_enqueued, 1);
    assert_eq!(snapshot.service.queue_depth, 0);
    assert!(snapshot.service.worker_spawns >= 1);
    assert!(snapshot.service.http_2xx > 0);
    assert_eq!(snapshot.caches.public_hits, 0);

    // An over-budget submission queues, runs, and is refused by the
    // ledger: one denial with a named reason, nothing charged.
    let over = client
        .submit("s", &submission(county_by_age(), 0.9, 8))
        .expect("submission accepted for queuing");
    let failed = client.wait_for(over.id, WAIT).expect("refusal comes back");
    assert_eq!(failed.status, "failed");
    let snapshot = drained(&client);
    let marginal = family(&snapshot, "marginal");
    assert_eq!(
        marginal.accepted_total, 1,
        "denials never count as accepted"
    );
    assert_eq!(marginal.denied_total, 1);
    let by_reason: u64 = marginal.denied_by_reason.iter().map(|r| r.denied).sum();
    assert_eq!(by_reason, 1, "every denial carries a reason");
    assert_eq!(
        marginal.epsilon_spent.to_bits(),
        family(&drained(&client), "marginal")
            .epsilon_spent
            .to_bits(),
        "a refusal spends nothing"
    );

    // A repeat of the admitted release: answered from the public cache.
    // The hit counter moves; the family's admission count and ε-spend do
    // not move by a single bit.
    let spent_bits = marginal.epsilon_spent.to_bits();
    let repeat = client
        .submit("s", &submission(county(), 0.25, 7))
        .expect("repeat accepted");
    assert!(repeat.cached, "identical request must be a cache hit");
    let snapshot = drained(&client);
    assert_eq!(snapshot.caches.public_hits, 1);
    assert_eq!(family(&snapshot, "marginal").accepted_total, 1);
    assert_eq!(
        family(&snapshot, "marginal").epsilon_spent.to_bits(),
        spent_bits
    );

    // The wire snapshot round-trips through its own JSON bit-exactly.
    let json = serde_json::to_string(&snapshot).expect("serialize");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, snapshot);

    // The audit view embeds the same snapshot.
    let audit = client.audit().expect("audit");
    assert_eq!(audit.metrics.families, snapshot.families);

    // Reaching a durable flush point (a season create) persists the
    // volatile counters — denials and cache hits included — so the whole
    // snapshot survives a stop/start cycle.
    client
        .create_season("s2", PrivacyParams::pure(ALPHA, 0.5))
        .expect("second season");
    let before = client.metrics().expect("metrics before restart");
    service.shutdown();

    let service = ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap))
        .expect("service reopens the same agency");
    let client = Client::new(service.addr());
    let after = client.metrics().expect("GET /metrics after restart");
    let marginal = family(&after, "marginal");
    assert_eq!(
        marginal.accepted_total, 1,
        "admissions replayed exactly once"
    );
    assert_eq!(marginal.denied_total, 1, "denials restored from the flush");
    assert_eq!(
        marginal.epsilon_spent.to_bits(),
        family(&before, "marginal").epsilon_spent.to_bits(),
        "replay-derived spend is bit-exact across restart"
    );
    assert_eq!(after.caches.public_hits, 1, "cache hits restored");
    assert_eq!(
        after.epsilon_remaining.to_bits(),
        before.epsilon_remaining.to_bits()
    );

    // Repeats stay free after the restart too: the durable public cache
    // answers, the hit counter moves, the spend still does not.
    let hit = client
        .submit("s", &submission(county(), 0.25, 7))
        .expect("repeat after restart");
    assert!(hit.cached, "the public cache is durable");
    let final_snapshot = drained(&client);
    assert_eq!(final_snapshot.caches.public_hits, 2);
    assert_eq!(
        family(&final_snapshot, "marginal").epsilon_spent.to_bits(),
        family(&before, "marginal").epsilon_spent.to_bits()
    );
    assert_eq!(family(&final_snapshot, "marginal").accepted_total, 1);

    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Pull the first sample line of metric `name` out of an exposition.
fn sample<'a>(text: &'a str, name: &str) -> &'a str {
    text.lines()
        .find(|l| !l.starts_with('#') && l.starts_with(name))
        .unwrap_or_else(|| panic!("exposition has no {name} sample"))
}

#[test]
fn openmetrics_exposition_mirrors_the_json_snapshot() {
    let dir = tmp_dir("openmetrics");
    let cap = PrivacyParams::pure(ALPHA, 2.0);
    let service =
        ReleaseService::start(&dir, dataset(), ServiceConfig::new(cap)).expect("service starts");
    let client = Client::new(service.addr());
    client
        .create_season("s", PrivacyParams::pure(ALPHA, 1.0))
        .expect("season fits under the cap");
    let receipt = client
        .submit("s", &submission(county(), 0.25, 7))
        .expect("submit accepted");
    let done = client.wait_for(receipt.id, WAIT).expect("release finishes");
    assert_eq!(done.status, "complete", "error: {:?}", done.error);
    let snapshot = drained(&client);

    let text = client
        .metrics_text()
        .expect("GET /metrics?format=openmetrics");
    assert!(text.ends_with("# EOF\n"), "exposition must terminate");

    // Every non-comment line is `name{labels} value` with a float value.
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
    }

    // The text samples agree with the JSON snapshot fetched alongside.
    let marginal = family(&snapshot, "marginal");
    assert_eq!(
        sample(&text, "eree_releases_accepted_total{family=\"marginal\"}"),
        format!(
            "eree_releases_accepted_total{{family=\"marginal\"}} {}",
            marginal.accepted_total
        )
    );
    assert_eq!(
        sample(
            &text,
            "eree_release_latency_micros_count{family=\"marginal\"}"
        ),
        format!(
            "eree_release_latency_micros_count{{family=\"marginal\"}} {}",
            marginal.latency.count
        )
    );
    // The +Inf bucket is cumulative: it equals the histogram count.
    assert_eq!(
        sample(
            &text,
            "eree_release_latency_micros_bucket{family=\"marginal\",le=\"+Inf\"}"
        )
        .rsplit_once(' ')
        .unwrap()
        .1,
        marginal.latency.count.to_string()
    );
    let cap_line = sample(&text, "eree_epsilon_cap");
    assert_eq!(
        cap_line.rsplit_once(' ').unwrap().1.parse::<f64>().unwrap(),
        snapshot.epsilon_cap
    );
    assert_eq!(
        sample(&text, "eree_season_queue_depth{season=\"s\"}"),
        "eree_season_queue_depth{season=\"s\"} 0"
    );

    // The default format is still JSON.
    let json_snapshot = client.metrics().expect("plain GET /metrics stays JSON");
    assert_eq!(json_snapshot.families, snapshot.families);

    // An unknown format is refused with a 400, not silently defaulted.
    {
        use std::io::{Read as _, Write as _};
        let mut stream = std::net::TcpStream::connect(service.addr()).expect("connect");
        stream
            .write_all(b"GET /metrics?format=xml HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n")
            .expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 400"), "got: {raw}");
    }

    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
