//! Loopback integration tests for the service's quarterly-panel mode and
//! its operational satellites: flow + level releases over HTTP from one
//! multi-year cap, the persistent release-id registry across a restart,
//! and idle-season worker retirement releasing the season write lease.

use eree_core::definitions::PrivacyParams;
use eree_core::engine::RequestKind;
use eree_core::mechanisms::MechanismKind;
use eree_service::{Client, ClientError, ReleaseService, ReleaseSubmission, ServiceConfig};
use lodes::{DatasetPanel, GeneratorConfig, PanelConfig};
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tabulate::{MarginalSpec, WorkplaceAttr};

const ALPHA: f64 = 0.1;
const WAIT: Duration = Duration::from_secs(60);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eree-service-it-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn panel() -> DatasetPanel {
    DatasetPanel::generate(
        &GeneratorConfig::test_small(77),
        &PanelConfig {
            quarters: 4,
            growth_sigma: 0.08,
            death_rate: 0.02,
            seed: 7,
        },
    )
}

fn county() -> MarginalSpec {
    MarginalSpec::new(vec![WorkplaceAttr::County], vec![])
}

fn submission(kind: RequestKind, epsilon: f64, seed: u64) -> ReleaseSubmission {
    ReleaseSubmission {
        kind,
        spec: county(),
        mechanism: MechanismKind::LogLaplace,
        budget: PrivacyParams::pure(ALPHA, epsilon),
        budget_is_per_cell: false,
        filter: None,
        integerize: false,
        seed,
        description: None,
    }
}

fn api_status(result: Result<impl std::fmt::Debug, ClientError>) -> u16 {
    match result {
        Err(ClientError::Api { status, .. }) => status,
        other => panic!("expected an API error, got {other:?}"),
    }
}

#[test]
fn quarterly_panel_over_http_under_one_cap() {
    let dir = tmp_dir("panel");
    let cap = PrivacyParams::pure(ALPHA, 10.0);
    let service = ReleaseService::start_panel(&dir, panel(), ServiceConfig::new(cap))
        .expect("panel service starts");
    let client = Client::new(service.addr());

    // Panel seasons must bind a quarter; unbound and out-of-range are
    // client errors, refused before anything is reserved.
    assert_eq!(
        api_status(client.create_season("loose", PrivacyParams::pure(ALPHA, 1.0))),
        400
    );
    assert_eq!(
        api_status(client.create_panel_season("future", PrivacyParams::pure(ALPHA, 1.0), 9)),
        400
    );

    // One season per quarter, all reserved from the one multi-year cap.
    client
        .create_panel_season("q0", PrivacyParams::pure(ALPHA, 1.0), 0)
        .expect("q0 fits");
    for q in 1..4u64 {
        client
            .create_panel_season(&format!("q{q}"), PrivacyParams::pure(ALPHA, 2.5), q)
            .expect("quarter season fits");
    }
    let audit = client.audit().expect("audit");
    assert!((audit.reserved_epsilon - 8.5).abs() < 1e-9);
    assert!((audit.remaining_epsilon - 1.5).abs() < 1e-9);

    // The base quarter has no predecessor: flows are refused up front.
    assert_eq!(
        api_status(client.submit("q0", &submission(RequestKind::Flows, 0.9, 9))),
        400
    );

    // Levels on every quarter, flows on every quarter pair — same base
    // seed everywhere; the consistent-over-time rewrite derives the
    // actual noise streams per quarter.
    let mut flow_ids = Vec::new();
    for q in 0..4u64 {
        let name = format!("q{q}");
        let level = client
            .submit(&name, &submission(RequestKind::Marginal, 0.5, 9))
            .expect("level accepted");
        assert!(!level.cached);
        let done = client.wait_for(level.id, WAIT).expect("level runs");
        assert_eq!(done.status, "complete", "error: {:?}", done.error);
        if q > 0 {
            let flows = client
                .submit(&name, &submission(RequestKind::Flows, 1.5, 9))
                .expect("flow accepted");
            assert!(!flows.cached);
            let done = client.wait_for(flows.id, WAIT).expect("flow runs");
            assert_eq!(done.status, "complete", "error: {:?}", done.error);
            let artifact = done.artifact.expect("flow artifact");
            let cells = artifact.flows().expect("flow payload");
            assert!(!cells.is_empty());
            // The QWI identity E - B = JC - JD holds in every published
            // cell, by construction.
            for cell in cells.values() {
                assert!(
                    ((cell.ending - cell.beginning) - (cell.job_creation - cell.job_destruction))
                        .abs()
                        < 1e-9
                );
            }
            flow_ids.push(flows.id);
        }
    }

    // Every season charged under its reservation, under the one cap.
    let audit = client.audit().expect("audit after releases");
    let spent_before = audit.spent_epsilon;
    assert!((spent_before - (4.0 * 0.5 + 3.0 * 1.5)).abs() < 1e-9);
    for season in &audit.seasons {
        assert!(season.spent_epsilon <= season.budget.epsilon + 1e-9);
    }

    // Repeat an identical flow submission: served from the public cache,
    // with the agency's ε spend unchanged.
    let repeat = client
        .submit("q2", &submission(RequestKind::Flows, 1.5, 9))
        .expect("repeat accepted");
    assert!(repeat.cached, "identical flow request must be a cache hit");
    let audit = client.audit().expect("audit after repeat");
    assert_eq!(audit.spent_epsilon, spent_before, "repeats spend zero ε");
    assert_eq!(audit.cache_hits, 1);

    let survivor = flow_ids[0];
    service.shutdown();

    // Restart: the release-id registry is persistent, so the completed
    // flow release is still addressable by its old id — artifact and all
    // (rehydrated from the public cache). The season → quarter bindings
    // are persistent too: a new submission to q3 needs no re-binding.
    let service = ReleaseService::start_panel(&dir, panel(), ServiceConfig::new(cap))
        .expect("panel service restarts");
    let client = Client::new(service.addr());
    let view = client.release(survivor).expect("old id survives restart");
    assert_eq!(view.status, "complete");
    assert!(view.artifact.is_some(), "artifact rehydrated from cache");
    let fresh = client
        .submit("q3", &submission(RequestKind::Marginal, 0.4, 77))
        .expect("binding survived restart");
    let done = client
        .wait_for(fresh.id, WAIT)
        .expect("resumed quarter runs");
    assert_eq!(done.status, "complete", "error: {:?}", done.error);
    service.shutdown();

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn single_snapshot_services_refuse_panel_vocabulary() {
    let dir = tmp_dir("no-panel");
    let cap = PrivacyParams::pure(ALPHA, 2.0);
    let dataset = lodes::Generator::new(GeneratorConfig::test_small(55)).generate();
    let service =
        ReleaseService::start(&dir, dataset, ServiceConfig::new(cap)).expect("service starts");
    let client = Client::new(service.addr());

    // Quarter bindings and flow submissions belong to panel services.
    assert_eq!(
        api_status(client.create_panel_season("q0", PrivacyParams::pure(ALPHA, 1.0), 0)),
        400
    );
    client
        .create_season("s", PrivacyParams::pure(ALPHA, 1.0))
        .expect("plain season");
    assert_eq!(
        api_status(client.submit("s", &submission(RequestKind::Flows, 0.3, 1))),
        400
    );

    let audit = client.audit().expect("audit");
    assert_eq!(audit.spent_epsilon, 0.0, "nothing was ever charged");
    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn idle_season_workers_retire_and_release_their_leases() {
    let dir = tmp_dir("idle");
    let cap = PrivacyParams::pure(ALPHA, 2.0);
    let dataset = lodes::Generator::new(GeneratorConfig::test_small(55)).generate();
    let config = ServiceConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServiceConfig::new(cap)
    };
    let service = ReleaseService::start(&dir, dataset, config).expect("service starts");
    let client = Client::new(service.addr());

    client
        .create_season("s", PrivacyParams::pure(ALPHA, 1.0))
        .expect("season");
    let receipt = client
        .submit("s", &submission(RequestKind::Marginal, 0.25, 3))
        .expect("submit");
    let done = client.wait_for(receipt.id, WAIT).expect("release runs");
    assert_eq!(done.status, "complete", "error: {:?}", done.error);
    assert_eq!(service.live_workers(), 1);

    // Idle long enough and the worker retires, dropping the season store
    // and with it the season's on-disk write lease.
    let lease = dir.join("seasons").join("s").join("season.lock");
    assert!(lease.exists(), "live worker holds the season lease");
    let deadline = Instant::now() + WAIT;
    while service.live_workers() > 0 {
        assert!(Instant::now() < deadline, "worker never retired");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!lease.exists(), "retirement releases the season lease");

    // The audit view stays exact while the season has no worker.
    let audit = client.audit().expect("audit with retired worker");
    let season = &audit.seasons[0];
    assert_eq!(season.completed, 1);
    assert!((season.spent_epsilon - 0.25).abs() < 1e-9);

    // The registry still serves the completed release.
    let view = client.release(receipt.id).expect("status after retirement");
    assert_eq!(view.status, "complete");

    // A new submission transparently respawns the worker on the same
    // season, which resumes from its persisted plan.
    let fresh = client
        .submit("s", &submission(RequestKind::Marginal, 0.25, 4))
        .expect("respawn submit");
    assert!(!fresh.cached);
    let done = client.wait_for(fresh.id, WAIT).expect("respawned runs");
    assert_eq!(done.status, "complete", "error: {:?}", done.error);
    assert_eq!(service.live_workers(), 1);
    let audit = client.audit().expect("audit after respawn");
    assert_eq!(audit.seasons[0].completed, 2);

    service.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
