//! OnTheMap-style area selections and area-comparison analysis
//! (Sec 3.2's ranking scenario).
//!
//! The OnTheMap web tool lets a user pick a comparison universe (state,
//! congressional district, hand-drawn polygon) and rank areas within it by
//! work-area job count. An [`AreaSelection`] is an arbitrary set of Census
//! places; [`area_comparison`] tabulates each area's employment with the
//! per-area establishment metadata the mechanisms need. Disjoint areas
//! partition establishments, so a private area comparison parallel-
//! composes (Thm 7.4): the whole comparison costs one ε.

use crate::marginal::CellStats;
use lodes::{Dataset, PlaceId};
use std::collections::{BTreeMap, BTreeSet};

/// A named set of Census places.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaSelection {
    /// Display name (e.g. "Metro core", "District 3").
    pub name: String,
    /// The places making up the area.
    pub places: BTreeSet<PlaceId>,
}

impl AreaSelection {
    /// Build a selection from a name and place list.
    pub fn new(name: impl Into<String>, places: impl IntoIterator<Item = PlaceId>) -> Self {
        Self {
            name: name.into(),
            places: places.into_iter().collect(),
        }
    }
}

/// Overlap between two areas (parallel composition requires disjointness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapError {
    /// Names of the two overlapping areas.
    pub areas: (String, String),
    /// A witness place present in both.
    pub place: PlaceId,
}

impl std::fmt::Display for OverlapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "areas '{}' and '{}' overlap at place {:?}",
            self.areas.0, self.areas.1, self.place
        )
    }
}

impl std::error::Error for OverlapError {}

/// Check that a set of areas is pairwise disjoint.
pub fn validate_disjoint(areas: &[AreaSelection]) -> Result<(), OverlapError> {
    let mut seen: BTreeMap<PlaceId, usize> = BTreeMap::new();
    for (i, area) in areas.iter().enumerate() {
        for &place in &area.places {
            if let Some(&j) = seen.get(&place) {
                return Err(OverlapError {
                    areas: (areas[j].name.clone(), area.name.clone()),
                    place,
                });
            }
            seen.insert(place, i);
        }
    }
    Ok(())
}

/// Tabulate each area's total employment with per-area establishment
/// metadata ([`CellStats`]: count, contributing establishments, and the
/// largest single-establishment contribution `x_v`).
///
/// # Errors
/// Returns [`OverlapError`] when areas overlap — overlapping areas would
/// break the parallel-composition accounting of a private release.
pub fn area_comparison(
    dataset: &Dataset,
    areas: &[AreaSelection],
) -> Result<Vec<(String, CellStats)>, OverlapError> {
    validate_disjoint(areas)?;
    // Map place -> area index for one-pass tabulation.
    let mut place_to_area: BTreeMap<PlaceId, usize> = BTreeMap::new();
    for (i, area) in areas.iter().enumerate() {
        for &p in &area.places {
            place_to_area.insert(p, i);
        }
    }

    #[derive(Default, Clone)]
    struct Acc {
        count: u64,
        establishments: u32,
        max_establishment: u32,
    }
    let mut accs = vec![Acc::default(); areas.len()];
    for wp in dataset.workplaces() {
        if let Some(&i) = place_to_area.get(&wp.place) {
            let size = dataset.establishment_size(wp.id);
            if size == 0 {
                continue;
            }
            accs[i].count += size as u64;
            accs[i].establishments += 1;
            accs[i].max_establishment = accs[i].max_establishment.max(size);
        }
    }

    Ok(areas
        .iter()
        .zip(accs)
        .map(|(area, acc)| {
            (
                area.name.clone(),
                CellStats {
                    count: acc.count,
                    establishments: acc.establishments,
                    max_establishment: acc.max_establishment,
                },
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(81)).generate()
    }

    #[test]
    fn disjoint_validation() {
        let a = AreaSelection::new("a", [PlaceId(0), PlaceId(1)]);
        let b = AreaSelection::new("b", [PlaceId(2)]);
        assert!(validate_disjoint(&[a.clone(), b.clone()]).is_ok());
        let c = AreaSelection::new("c", [PlaceId(1), PlaceId(3)]);
        let err = validate_disjoint(&[a, b, c]).unwrap_err();
        assert_eq!(err.place, PlaceId(1));
        assert_eq!(err.areas.0, "a");
        assert_eq!(err.areas.1, "c");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn area_counts_match_place_marginal() {
        use crate::attr::{MarginalSpec, WorkplaceAttr};
        use crate::engine::compute_marginal;
        let d = dataset();
        let m = compute_marginal(&d, &MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]));
        // One area per place: counts must match the marginal exactly.
        let areas: Vec<AreaSelection> = (0..4)
            .map(|p| AreaSelection::new(format!("p{p}"), [PlaceId(p)]))
            .collect();
        let stats = area_comparison(&d, &areas).unwrap();
        for (p, (_, s)) in stats.iter().enumerate() {
            let key = m.schema().encode(&[p as u32]);
            let expect = m.cell(key).map(|c| c.count).unwrap_or(0);
            assert_eq!(s.count, expect, "place {p}");
        }
    }

    #[test]
    fn merged_areas_sum_counts_and_max_is_max() {
        let d = dataset();
        let single: Vec<AreaSelection> = (0..3)
            .map(|p| AreaSelection::new(format!("p{p}"), [PlaceId(p)]))
            .collect();
        let merged = vec![AreaSelection::new(
            "merged",
            [PlaceId(0), PlaceId(1), PlaceId(2)],
        )];
        let singles = area_comparison(&d, &single).unwrap();
        let merged = area_comparison(&d, &merged).unwrap();
        let sum: u64 = singles.iter().map(|(_, s)| s.count).sum();
        assert_eq!(merged[0].1.count, sum);
        let max = singles
            .iter()
            .map(|(_, s)| s.max_establishment)
            .max()
            .unwrap();
        assert_eq!(merged[0].1.max_establishment, max);
    }

    #[test]
    fn empty_area_reports_zero() {
        let d = dataset();
        // A place id beyond any establishment's place set — use an empty
        // set instead (guaranteed empty).
        let areas = vec![AreaSelection::new("empty", [])];
        let stats = area_comparison(&d, &areas).unwrap();
        assert_eq!(stats[0].1.count, 0);
        assert_eq!(stats[0].1.establishments, 0);
    }
}
