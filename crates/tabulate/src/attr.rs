//! Grouping attributes and marginal specifications.
//!
//! A marginal query is defined by the set of attributes it groups by —
//! `V_W ⊆` workplace attributes (public per Sec 4.1) and `V_I ⊆` worker
//! attributes (private). The distinction matters for privacy accounting:
//! marginals over only workplace attributes parallel-compose under strong
//! (α,ε)-ER-EE privacy, while marginals that include worker attributes
//! require weak privacy and sequential composition over the worker-cell
//! domain (Sec 8 of the paper).

use lodes::NaicsSector;
use lodes::{AgeGroup, Dataset, Education, Ethnicity, Ownership, Race, Sex, Worker, Workplace};
use serde::{Deserialize, Serialize};

/// A workplace (establishment) attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkplaceAttr {
    /// State containing the establishment.
    State,
    /// County containing the establishment.
    County,
    /// Census place containing the establishment.
    Place,
    /// Census block of the establishment.
    Block,
    /// Two-digit NAICS sector.
    Naics,
    /// Ownership type.
    Ownership,
}

/// A worker (employee) attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkerAttr {
    /// Sex.
    Sex,
    /// Age group.
    Age,
    /// Race.
    Race,
    /// Ethnicity.
    Ethnicity,
    /// Educational attainment.
    Education,
}

/// Either kind of attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Attr {
    /// Workplace attribute.
    Workplace(WorkplaceAttr),
    /// Worker attribute.
    Worker(WorkerAttr),
}

impl WorkplaceAttr {
    /// Domain cardinality with respect to a concrete dataset (geographic
    /// attributes depend on the generated universe).
    pub fn cardinality(&self, dataset: &Dataset) -> usize {
        match self {
            WorkplaceAttr::State => dataset.geography().num_states() as usize,
            WorkplaceAttr::County => dataset.geography().num_counties(),
            WorkplaceAttr::Place => dataset.geography().num_places(),
            WorkplaceAttr::Block => dataset.geography().num_blocks(),
            WorkplaceAttr::Naics => NaicsSector::COUNT,
            WorkplaceAttr::Ownership => Ownership::COUNT,
        }
    }

    /// The attribute's value for a workplace, as a dense index.
    #[inline]
    pub fn value(&self, wp: &Workplace) -> u32 {
        match self {
            WorkplaceAttr::State => wp.state.0 as u32,
            WorkplaceAttr::County => wp.county.0 as u32,
            WorkplaceAttr::Place => wp.place.0,
            WorkplaceAttr::Block => wp.block.0,
            WorkplaceAttr::Naics => wp.naics.index() as u32,
            WorkplaceAttr::Ownership => wp.ownership.index() as u32,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkplaceAttr::State => "state",
            WorkplaceAttr::County => "county",
            WorkplaceAttr::Place => "place",
            WorkplaceAttr::Block => "block",
            WorkplaceAttr::Naics => "naics",
            WorkplaceAttr::Ownership => "ownership",
        }
    }
}

impl WorkerAttr {
    /// Domain cardinality (worker domains are fixed enums).
    pub fn cardinality(&self) -> usize {
        match self {
            WorkerAttr::Sex => Sex::COUNT,
            WorkerAttr::Age => AgeGroup::COUNT,
            WorkerAttr::Race => Race::COUNT,
            WorkerAttr::Ethnicity => Ethnicity::COUNT,
            WorkerAttr::Education => Education::COUNT,
        }
    }

    /// The attribute's value for a worker, as a dense index.
    #[inline]
    pub fn value(&self, w: &Worker) -> u32 {
        match self {
            WorkerAttr::Sex => w.sex.index() as u32,
            WorkerAttr::Age => w.age.index() as u32,
            WorkerAttr::Race => w.race.index() as u32,
            WorkerAttr::Ethnicity => w.ethnicity.index() as u32,
            WorkerAttr::Education => w.education.index() as u32,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkerAttr::Sex => "sex",
            WorkerAttr::Age => "age",
            WorkerAttr::Race => "race",
            WorkerAttr::Ethnicity => "ethnicity",
            WorkerAttr::Education => "education",
        }
    }
}

/// A marginal query specification `q_{V_I ∪ V_W}`.
///
/// Ordered and hashable so specs can key caches (e.g. the release
/// engine's tabulation cache) and sorted indexes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MarginalSpec {
    /// Workplace grouping attributes `V_W` (order defines key layout).
    pub workplace_attrs: Vec<WorkplaceAttr>,
    /// Worker grouping attributes `V_I`.
    pub worker_attrs: Vec<WorkerAttr>,
}

impl MarginalSpec {
    /// Build a spec; duplicate attributes are rejected.
    pub fn new(workplace_attrs: Vec<WorkplaceAttr>, worker_attrs: Vec<WorkerAttr>) -> Self {
        let mut wp = workplace_attrs.clone();
        wp.sort_unstable();
        wp.dedup();
        assert_eq!(
            wp.len(),
            workplace_attrs.len(),
            "duplicate workplace attribute in marginal spec"
        );
        let mut wk = worker_attrs.clone();
        wk.sort_unstable();
        wk.dedup();
        assert_eq!(
            wk.len(),
            worker_attrs.len(),
            "duplicate worker attribute in marginal spec"
        );
        Self {
            workplace_attrs,
            worker_attrs,
        }
    }

    /// True when the marginal groups by at least one worker attribute —
    /// such marginals need weak (α,ε)-ER-EE privacy (Thm 8.1).
    pub fn has_worker_attrs(&self) -> bool {
        !self.worker_attrs.is_empty()
    }

    /// Size of the worker-attribute sub-domain `d` — the sequential-
    /// composition multiplier for releasing the full marginal under weak
    /// privacy (Sec 8: effective loss is `d·ε`).
    pub fn worker_domain_size(&self) -> usize {
        self.worker_attrs
            .iter()
            .map(|a| a.cardinality())
            .product::<usize>()
            .max(1)
    }

    /// All attributes in key order (workplace attributes first).
    pub fn attrs(&self) -> impl Iterator<Item = Attr> + '_ {
        self.workplace_attrs
            .iter()
            .map(|&a| Attr::Workplace(a))
            .chain(self.worker_attrs.iter().map(|&a| Attr::Worker(a)))
    }

    /// Human-readable name, e.g. `place x naics x ownership`.
    pub fn name(&self) -> String {
        let parts: Vec<&str> = self
            .workplace_attrs
            .iter()
            .map(|a| a.name())
            .chain(self.worker_attrs.iter().map(|a| a.name()))
            .collect();
        if parts.is_empty() {
            "total".to_string()
        } else {
            parts.join(" x ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};

    #[test]
    fn cardinalities_match_dataset() {
        let d = Generator::new(GeneratorConfig::test_small(1)).generate();
        assert_eq!(
            WorkplaceAttr::Place.cardinality(&d),
            d.geography().num_places()
        );
        assert_eq!(WorkplaceAttr::Naics.cardinality(&d), 20);
        assert_eq!(WorkplaceAttr::Ownership.cardinality(&d), 4);
        assert_eq!(WorkerAttr::Sex.cardinality(), 2);
        assert_eq!(WorkerAttr::Education.cardinality(), 4);
    }

    #[test]
    fn spec_name_and_domain() {
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::Place, WorkplaceAttr::Naics],
            vec![WorkerAttr::Sex, WorkerAttr::Education],
        );
        assert_eq!(spec.name(), "place x naics x sex x education");
        assert_eq!(spec.worker_domain_size(), 8);
        assert!(spec.has_worker_attrs());
        let er_only = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]);
        assert!(!er_only.has_worker_attrs());
        assert_eq!(er_only.worker_domain_size(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate workplace attribute")]
    fn rejects_duplicates() {
        MarginalSpec::new(vec![WorkplaceAttr::Place, WorkplaceAttr::Place], vec![]);
    }
}
