//! Packed cell keys for marginal cells.
//!
//! A cell of `q_V(D)` is a tuple of attribute values. For tabulation speed
//! the tuple is mixed-radix packed into a single `u64` according to a
//! [`CellSchema`] derived from the marginal spec and the dataset's domain
//! cardinalities. Packing is bijective, so keys decode back to value
//! tuples for display and for slicing marginals by worker attributes.

use crate::attr::{Attr, MarginalSpec};
use lodes::Dataset;
use serde::{get_field, DeError, Deserialize, Serialize, Value};

/// A packed marginal-cell identifier. Ordering follows the packed integer,
/// which is lexicographic in the spec's attribute order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellKey(pub u64);

/// Encoder/decoder between attribute-value tuples and packed [`CellKey`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSchema {
    attrs: Vec<Attr>,
    cardinalities: Vec<u64>,
    /// Strides for mixed-radix packing; `strides[i]` multiplies value `i`.
    strides: Vec<u64>,
    domain_size: u64,
}

impl CellSchema {
    /// Build the schema for `spec` against `dataset`.
    ///
    /// # Panics
    /// Panics if the full cross-product domain exceeds `u64` range (cannot
    /// happen for realistic specs: even block × all worker attributes is
    /// far below 2⁶⁴).
    pub fn new(spec: &MarginalSpec, dataset: &Dataset) -> Self {
        let attrs: Vec<Attr> = spec.attrs().collect();
        let cardinalities: Vec<u64> = attrs
            .iter()
            .map(|a| match a {
                Attr::Workplace(w) => w.cardinality(dataset) as u64,
                Attr::Worker(w) => w.cardinality() as u64,
            })
            .collect();
        Self::from_parts(attrs, cardinalities)
    }

    /// Build a schema from an attribute list and matching cardinalities
    /// (used by [`crate::TabulationIndex`], which snapshots the dataset's
    /// domain cardinalities at build time).
    ///
    /// # Panics
    /// Panics if the cross-product domain exceeds `u64` range.
    pub(crate) fn from_parts(attrs: Vec<Attr>, cardinalities: Vec<u64>) -> Self {
        debug_assert_eq!(attrs.len(), cardinalities.len());
        let mut strides = vec![0u64; attrs.len()];
        let mut acc: u64 = 1;
        for i in (0..attrs.len()).rev() {
            strides[i] = acc;
            acc = acc
                .checked_mul(cardinalities[i])
                .expect("marginal domain exceeds u64");
        }
        Self {
            attrs,
            cardinalities,
            strides,
            domain_size: acc,
        }
    }

    /// The attributes in key order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Total number of cells in the (mostly empty) cross-product domain.
    pub fn domain_size(&self) -> u64 {
        self.domain_size.max(1)
    }

    /// Pack a tuple of attribute values (in key order) into a key.
    #[inline]
    pub fn encode(&self, values: &[u32]) -> CellKey {
        debug_assert_eq!(values.len(), self.attrs.len());
        let mut key = 0u64;
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(
                (v as u64) < self.cardinalities[i],
                "value {v} out of range for attribute {:?}",
                self.attrs[i]
            );
            key += v as u64 * self.strides[i];
        }
        CellKey(key)
    }

    /// Unpack a key into its attribute values.
    pub fn decode(&self, key: CellKey) -> Vec<u32> {
        let mut rest = key.0;
        let mut out = Vec::with_capacity(self.attrs.len());
        for i in 0..self.attrs.len() {
            out.push((rest / self.strides[i]) as u32);
            rest %= self.strides[i];
        }
        out
    }

    /// The value of one attribute inside a packed key.
    #[inline]
    pub fn value_of(&self, key: CellKey, attr_index: usize) -> u32 {
        ((key.0 / self.strides[attr_index]) % self.cardinalities[attr_index]) as u32
    }

    /// Mixed-radix stride of the attribute at `attr_index` — the packed
    /// weight of one unit of that attribute's value inside a key. Exposed
    /// so the columnar tabulation engine can accumulate keys column-wise
    /// instead of materializing value tuples for [`encode`](Self::encode).
    #[inline]
    pub fn stride_of(&self, attr_index: usize) -> u64 {
        self.strides[attr_index]
    }

    /// Position of an attribute in the key layout, if present.
    pub fn position_of(&self, attr: Attr) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }

    /// Domain cardinality of the attribute at `attr_index`.
    pub fn cardinality_of(&self, attr_index: usize) -> u64 {
        self.cardinalities[attr_index]
    }
}

/// A schema serializes as its attribute list and cardinalities; strides and
/// domain size are derived, never trusted from a snapshot.
impl Serialize for CellSchema {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("attrs".to_string(), self.attrs.to_value()),
            ("cardinalities".to_string(), self.cardinalities.to_value()),
        ])
    }
}

impl Deserialize for CellSchema {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let attrs = Vec::<Attr>::from_value(get_field(v, "attrs")?)?;
        let cardinalities = Vec::<u64>::from_value(get_field(v, "cardinalities")?)?;
        if attrs.len() != cardinalities.len() {
            return Err(DeError::new(format!(
                "schema has {} attributes but {} cardinalities",
                attrs.len(),
                cardinalities.len()
            )));
        }
        // Re-derive the strides with the same overflow/zero rules `new`
        // enforces, but failing as a parse error instead of a panic: a
        // persisted schema is untrusted input.
        cardinalities.iter().try_fold(1u64, |acc, &card| {
            if card == 0 {
                return Err(DeError::new("schema cardinality of 0"));
            }
            acc.checked_mul(card)
                .ok_or_else(|| DeError::new("schema domain exceeds u64"))
        })?;
        Ok(Self::from_parts(attrs, cardinalities))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{MarginalSpec, WorkerAttr, WorkplaceAttr};
    use lodes::{Generator, GeneratorConfig};

    fn schema() -> (CellSchema, Dataset) {
        let d = Generator::new(GeneratorConfig::test_small(1)).generate();
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::Naics, WorkplaceAttr::Ownership],
            vec![WorkerAttr::Sex],
        );
        (CellSchema::new(&spec, &d), d)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (s, _) = schema();
        assert_eq!(s.domain_size(), 20 * 4 * 2);
        for naics in 0..20u32 {
            for own in 0..4u32 {
                for sex in 0..2u32 {
                    let key = s.encode(&[naics, own, sex]);
                    assert_eq!(s.decode(key), vec![naics, own, sex]);
                    assert_eq!(s.value_of(key, 0), naics);
                    assert_eq!(s.value_of(key, 1), own);
                    assert_eq!(s.value_of(key, 2), sex);
                }
            }
        }
    }

    #[test]
    fn keys_are_unique_across_domain() {
        let (s, _) = schema();
        let mut seen = std::collections::BTreeSet::new();
        for naics in 0..20u32 {
            for own in 0..4u32 {
                for sex in 0..2u32 {
                    assert!(seen.insert(s.encode(&[naics, own, sex])));
                }
            }
        }
        assert_eq!(seen.len() as u64, s.domain_size());
    }

    #[test]
    fn position_of_finds_attrs() {
        let (s, _) = schema();
        assert_eq!(
            s.position_of(Attr::Workplace(WorkplaceAttr::Naics)),
            Some(0)
        );
        assert_eq!(s.position_of(Attr::Worker(WorkerAttr::Sex)), Some(2));
        assert_eq!(s.position_of(Attr::Worker(WorkerAttr::Age)), None);
    }

    #[test]
    fn empty_spec_has_single_cell() {
        let d = Generator::new(GeneratorConfig::test_small(2)).generate();
        let spec = MarginalSpec::new(vec![], vec![]);
        let s = CellSchema::new(&spec, &d);
        assert_eq!(s.domain_size(), 1);
        assert_eq!(s.encode(&[]), CellKey(0));
        assert!(s.decode(CellKey(0)).is_empty());
    }
}
