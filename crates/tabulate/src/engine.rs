//! Marginal evaluation over the columnar [`TabulationIndex`].
//!
//! The evaluator iterates **establishments, not workers**, over the
//! index's CSR layout (see [`crate::index`]):
//!
//! 1. The workplace part of the cell key is encoded **once per
//!    establishment** by accumulating the spec's workplace code columns
//!    against the schema strides.
//! 2. Worker-attribute combinations within the establishment are counted
//!    in a small **dense scratch array** over the worker sub-domain (at
//!    most a few thousand codes — the product of worker-attribute
//!    cardinalities), touching only the `u8` columns the spec names.
//!    The multiply-add that folds those columns into sub-keys does not run
//!    per worker: sub-keys for an L2-resident **block** of contiguous
//!    workers are precomputed by the branch-free kernels in
//!    [`crate::kernel`] (AVX2 when available, scalar otherwise — selected
//!    at runtime, bit-identical by construction), and the scatter loop
//!    then reads one `u16` per worker. Establishment base keys are
//!    precomputed the same way over the workplace `u32` columns.
//! 3. Each establishment emits `(cell key, contribution)` pairs; because
//!    one establishment's workers are contiguous, every pair *is* one
//!    establishment's exact contribution to one cell — no global
//!    `(cell, establishment)` hash map exists anywhere.
//!
//! **Workplace-only marginals** skip step 2 entirely: each establishment
//! lands in exactly one cell, contributing its whole (or filtered)
//! worker-range size.
//!
//! **Parallelism and determinism.** The establishment loop is sharded
//! across `std::thread::scope` workers in contiguous chunks; each shard
//! sorts its emitted run by key, and the shards are combined by a
//! deterministic k-way merge that aggregates equal keys into
//! [`CellStats`] (`count` sums, `establishments` counts pairs,
//! `max_establishment` maxes). All three aggregates are commutative, so
//! the resulting [`Marginal`] — a `Vec` of cells sorted by key — is
//! **bit-identical at any thread count**, preserving the engine-wide
//! determinism guarantee (artifacts depend only on `(seed, cell key)`).
//!
//! Establishment metadata follows Lemma 8.5 throughout: for filtered
//! queries, `x_v` is the largest per-establishment count of workers
//! *matching the filter*, and `establishments` counts establishments with
//! at least one matching worker.
//!
//! The pre-index per-worker loop survives as `compute_marginal_legacy` /
//! `compute_marginal_filtered_legacy` — a brute-force reference for tests
//! and the old-vs-new benchmark — but only behind the **default-off
//! `reference` feature**: the reference evaluators are reachable from
//! nothing a production build compiles, so a release path can never
//! silently take the slow pre-index loop.

use crate::attr::MarginalSpec;
use crate::cell::CellKey;
use crate::cell::CellSchema;
use crate::index::TabulationIndex;
use crate::kernel::{establishment_keys, worker_subkeys, Kernel};
use crate::marginal::{CellStats, Marginal};
use lodes::{Dataset, Worker};
#[cfg(feature = "reference")]
use std::collections::{BTreeMap, HashMap};

/// Evaluate the marginal query `q_V(D)`.
///
/// Convenience wrapper: builds a throwaway [`TabulationIndex`] and runs
/// the indexed evaluator single-threaded. Callers tabulating one dataset
/// more than once should build the index themselves (or go through the
/// release engine, which shares one per batch/season).
pub fn compute_marginal(dataset: &Dataset, spec: &MarginalSpec) -> Marginal {
    TabulationIndex::build(dataset).marginal(spec)
}

/// Evaluate a marginal over only the workers matching `filter`.
///
/// The filter models single-query workloads like Ranking 2 ("number of
/// female employees with a bachelor's degree per place×industry×ownership
/// cell"): group by workplace attributes while restricting the counted
/// population. Establishment metadata (`x_v`, contributing-establishment
/// counts) refer to the *filtered* population, matching Lemma 8.5's
/// definition of `x_v` as the largest per-establishment count of workers
/// matching the query condition.
pub fn compute_marginal_filtered<F>(dataset: &Dataset, spec: &MarginalSpec, filter: F) -> Marginal
where
    F: Fn(&Worker) -> bool + Sync,
{
    TabulationIndex::build(dataset).marginal_filtered(spec, filter)
}

/// Evaluate a marginal over only the records matching the declarative
/// filter `expr` (see [`crate::filter`]).
///
/// Convenience wrapper building a throwaway [`TabulationIndex`]; callers
/// tabulating one dataset more than once should build the index
/// themselves and use [`TabulationIndex::marginal_expr`].
pub fn compute_marginal_expr(
    dataset: &Dataset,
    spec: &MarginalSpec,
    expr: &crate::filter::FilterExpr,
) -> Marginal {
    TabulationIndex::build(dataset).marginal_expr(spec, expr)
}

impl TabulationIndex {
    /// Evaluate `q_V` over the indexed dataset, single-threaded.
    pub fn marginal(&self, spec: &MarginalSpec) -> Marginal {
        self.marginal_sharded(spec, 1)
    }

    /// Evaluate `q_V`, sharding the establishment loop across up to
    /// `threads` scoped workers. The result is bit-identical at any
    /// thread count.
    pub fn marginal_sharded(&self, spec: &MarginalSpec, threads: usize) -> Marginal {
        tabulate_index(self, spec, None, threads, Kernel::Auto)
    }

    /// [`marginal_sharded`](Self::marginal_sharded) with an explicit
    /// [`Kernel`] choice. `Kernel::Scalar` forces the scalar key kernels;
    /// the result is bit-identical to `Kernel::Auto` by construction (the
    /// property tests assert it, the benchmark measures the difference).
    pub fn marginal_sharded_with_kernel(
        &self,
        spec: &MarginalSpec,
        threads: usize,
        kernel: Kernel,
    ) -> Marginal {
        tabulate_index(self, spec, None, threads, kernel)
    }

    /// Evaluate `q_V` over only the workers matching `filter`,
    /// single-threaded.
    pub fn marginal_filtered<F>(&self, spec: &MarginalSpec, filter: F) -> Marginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        self.marginal_filtered_sharded(spec, filter, 1)
    }

    /// Evaluate `q_V` over only the records matching the declarative
    /// filter `expr`, single-threaded. The expression is compiled against
    /// this index (workplace leaves resolved per establishment, worker
    /// leaves collapsed into domain truth tables — see [`crate::filter`])
    /// and then evaluated exactly like a closure filter, so the result is
    /// bit-identical to [`marginal_filtered`](Self::marginal_filtered)
    /// with the equivalent predicate.
    pub fn marginal_expr(&self, spec: &MarginalSpec, expr: &crate::filter::FilterExpr) -> Marginal {
        self.marginal_expr_sharded(spec, expr, 1)
    }

    /// Evaluate a declaratively filtered marginal with a sharded
    /// establishment loop. The result is bit-identical at any thread
    /// count.
    pub fn marginal_expr_sharded(
        &self,
        spec: &MarginalSpec,
        expr: &crate::filter::FilterExpr,
        threads: usize,
    ) -> Marginal {
        self.marginal_expr_sharded_with_kernel(spec, expr, threads, Kernel::Auto)
    }

    /// [`marginal_expr_sharded`](Self::marginal_expr_sharded) with an
    /// explicit [`Kernel`] choice (see
    /// [`marginal_sharded_with_kernel`](Self::marginal_sharded_with_kernel)).
    pub fn marginal_expr_sharded_with_kernel(
        &self,
        spec: &MarginalSpec,
        expr: &crate::filter::FilterExpr,
        threads: usize,
        kernel: Kernel,
    ) -> Marginal {
        let compiled = expr.compile(self);
        self.marginal_filtered_sharded_with_kernel(spec, |w| compiled.matches(w), threads, kernel)
    }

    /// Evaluate a filtered marginal with a sharded establishment loop.
    /// The result is bit-identical at any thread count.
    pub fn marginal_filtered_sharded<F>(
        &self,
        spec: &MarginalSpec,
        filter: F,
        threads: usize,
    ) -> Marginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        tabulate_index(self, spec, Some(&filter), threads, Kernel::Auto)
    }

    /// [`marginal_filtered_sharded`](Self::marginal_filtered_sharded) with
    /// an explicit [`Kernel`] choice (see
    /// [`marginal_sharded_with_kernel`](Self::marginal_sharded_with_kernel)).
    pub fn marginal_filtered_sharded_with_kernel<F>(
        &self,
        spec: &MarginalSpec,
        filter: F,
        threads: usize,
        kernel: Kernel,
    ) -> Marginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        tabulate_index(self, spec, Some(&filter), threads, kernel)
    }

    /// Advisory shard-count heuristic: the number of shards `threads`
    /// should actually be split into on this index so that parallel
    /// tabulation never loses to single-threaded.
    ///
    /// Every shard costs a sorted run plus a k-way-merge cursor, and a
    /// shard scanning only a few thousand workers finishes faster than its
    /// thread spawns — on small datasets the fixed per-shard overhead made
    /// the recorded multithreaded full-attribute workload *slower* than
    /// 1T. The heuristic caps shards so each scans at least
    /// `MIN_SHARD_WORKERS` (2¹⁶) workers, collapsing to one shard (the 1T
    /// code path, bit-identical by the merge guarantee) whenever the
    /// dataset is too small to amortize fan-out. The release engine and
    /// the benchmark apply it before sharding; direct `*_sharded` calls
    /// keep the caller's count so tests can force any shard layout.
    pub fn effective_shards(&self, threads: usize) -> usize {
        threads
            .max(1)
            .min((self.num_workers() / MIN_SHARD_WORKERS).max(1))
            .min(self.num_establishments().max(1))
    }
}

/// Minimum workers a shard must scan to pay for its thread spawn, sort,
/// and merge cursor (see [`TabulationIndex::effective_shards`]).
pub(crate) const MIN_SHARD_WORKERS: usize = 1 << 16;

/// Per-shard tabulation state, borrowed immutably by every worker thread.
/// Also built by [`crate::region`] to tabulate each region shard of a
/// [`crate::RegionShardedIndex`] through the same code path.
pub(crate) struct ShardPlan<'a> {
    index: &'a TabulationIndex,
    /// Workplace code columns of the spec's workplace attributes.
    wp_cols: Vec<&'a [u32]>,
    /// Schema strides of the workplace attributes (these already carry the
    /// worker sub-domain factor, so `base + subkey` is the full key).
    wp_strides: Vec<u64>,
    /// Worker code columns of the spec's worker attributes.
    wk_cols: Vec<&'a [u8]>,
    /// Schema strides of the worker attributes (the low mixed-radix part;
    /// sub-keys fit `u16` because worker domains are small enums — the
    /// full cross product is ≤ 768 codes).
    wk_strides: Vec<u16>,
    /// Worker sub-domain size — the dense scratch extent.
    worker_domain: usize,
    filter: Option<&'a (dyn Fn(&Worker) -> bool + Sync)>,
    kernel: Kernel,
}

impl<'a> ShardPlan<'a> {
    pub(crate) fn new(
        index: &'a TabulationIndex,
        spec: &MarginalSpec,
        schema: &CellSchema,
        filter: Option<&'a (dyn Fn(&Worker) -> bool + Sync)>,
        kernel: Kernel,
    ) -> Self {
        let n_wp = spec.workplace_attrs.len();
        Self {
            index,
            wp_cols: spec
                .workplace_attrs
                .iter()
                .map(|&a| index.workplace_column(a))
                .collect(),
            wp_strides: (0..n_wp).map(|i| schema.stride_of(i)).collect(),
            wk_cols: spec
                .worker_attrs
                .iter()
                .map(|&a| index.worker_column(a))
                .collect(),
            wk_strides: (0..spec.worker_attrs.len())
                .map(|i| {
                    u16::try_from(schema.stride_of(n_wp + i))
                        .expect("worker sub-domain exceeds u16")
                })
                .collect(),
            worker_domain: spec.worker_domain_size(),
            filter,
            kernel,
        }
    }
}

/// The indexed evaluator: shard, tabulate sorted runs, k-way merge.
fn tabulate_index(
    index: &TabulationIndex,
    spec: &MarginalSpec,
    filter: Option<&(dyn Fn(&Worker) -> bool + Sync)>,
    threads: usize,
    kernel: Kernel,
) -> Marginal {
    let schema = index.schema(spec);
    let n_estabs = index.num_establishments();
    let plan = ShardPlan::new(index, spec, &schema, filter, kernel);
    let threads = threads.max(1).min(n_estabs.max(1));
    let runs: Vec<Vec<(u64, u32)>> = if threads <= 1 {
        vec![tabulate_shard(&plan, 0, n_estabs)]
    } else {
        // Shard boundaries are balanced by cumulative *worker* count (see
        // [`TabulationIndex::shard_bounds`]): tabulation cost is linear in
        // workers scanned, so establishment-count chunking starves some
        // shards and overloads others on skewed universes.
        let bounds = index.shard_bounds(threads);
        std::thread::scope(|scope| {
            let plan = &plan;
            let handles: Vec<_> = bounds
                .windows(2)
                .map(|w| {
                    let (lo, hi) = (w[0], w[1]);
                    scope.spawn(move || tabulate_shard(plan, lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tabulation shard panicked"))
                .collect()
        })
    };
    Marginal::from_sorted(spec.clone(), schema, merge_runs(runs))
}

/// Workers per precomputed sub-key block: 2¹⁵ `u16` sub-keys = 64 KiB, an
/// L2-resident staging buffer between the key kernels and the scatter.
const WORKER_BLOCK: usize = 1 << 15;

/// Tabulate establishments `lo..hi` into a run of `(key, contribution)`
/// pairs sorted by key. Each pair is one establishment's exact count in
/// one cell; an establishment emits at most one pair per cell.
///
/// The shard walks its establishments in batches whose worker spans fill
/// one [`WORKER_BLOCK`]: the batch's establishment base keys and worker
/// sub-keys are precomputed by the [`crate::kernel`] kernels, then the
/// scalar scatter counts each establishment's workers into the dense
/// scratch. The scatter itself is identical for every kernel choice, so
/// the emitted run is bit-identical whichever kernel filled the buffers.
pub(crate) fn tabulate_shard(plan: &ShardPlan<'_>, lo: usize, hi: usize) -> Vec<(u64, u32)> {
    let mut run: Vec<(u64, u32)> = Vec::new();
    // Inclusive upper bound on emitted keys, tracked once per
    // establishment so the run sort can pick a radix strategy.
    let mut max_key: u64 = 0;
    // Dense per-establishment counts over the worker sub-domain, reset
    // via the touched list (sub-domains are ≤ a few thousand codes).
    let mut scratch = vec![0u32; plan.worker_domain];
    let mut touched: Vec<u32> = Vec::with_capacity(plan.worker_domain.min(256));
    let mut bases: Vec<u64> = Vec::new();
    let mut subkeys: Vec<u16> = Vec::new();
    let workers = plan.index.workers();
    let mut batch_lo = lo;
    while batch_lo < hi {
        // Extend the batch establishment-aligned until its worker span
        // fills the block (always at least one establishment, so a single
        // establishment larger than the block still processes — its
        // sub-key buffer just grows past the L2 target for that batch).
        let span_start = plan.index.worker_range(batch_lo).start;
        let mut batch_hi = batch_lo + 1;
        while batch_hi < hi && plan.index.worker_range(batch_hi).end - span_start <= WORKER_BLOCK {
            batch_hi += 1;
        }
        let span_end = plan.index.worker_range(batch_hi - 1).end;

        // Establishment base keys for the whole batch in one kernel pass.
        bases.resize(batch_hi - batch_lo, 0);
        establishment_keys(
            &plan.wp_cols,
            &plan.wp_strides,
            batch_lo,
            &mut bases,
            plan.kernel,
        );

        if plan.wk_cols.is_empty() {
            // Workplace-only fast path: each establishment lands in
            // exactly one cell with its whole (or filtered) size — no
            // per-worker attribute work at all when unfiltered.
            for e in batch_lo..batch_hi {
                let range = plan.index.worker_range(e);
                if range.is_empty() {
                    continue;
                }
                let count = match plan.filter {
                    None => range.len() as u32,
                    Some(f) => workers[range].iter().filter(|w| f(w)).count() as u32,
                };
                if count > 0 {
                    let base = bases[e - batch_lo];
                    max_key = max_key.max(base);
                    run.push((base, count));
                }
            }
            batch_lo = batch_hi;
            continue;
        }

        // Worker sub-keys for the batch's whole span in one kernel pass.
        subkeys.resize(span_end - span_start, 0);
        worker_subkeys(
            &plan.wk_cols,
            &plan.wk_strides,
            span_start,
            &mut subkeys,
            plan.kernel,
        );

        for e in batch_lo..batch_hi {
            let range = plan.index.worker_range(e);
            if range.is_empty() {
                continue;
            }
            let base = bases[e - batch_lo];
            // Bound every key this establishment can emit in one step:
            // sub-keys are strictly below the worker domain.
            max_key = max_key.max(base + plan.worker_domain as u64 - 1);
            // SAFETY (both arms): every sub-key is `Σ code·stride` over
            // enum-derived code columns, each code strictly below its
            // attribute's cardinality, so `subkey < worker_domain ==
            // scratch.len()` by the mixed-radix construction — the same
            // invariant that makes the `u16` kernel arithmetic exact.
            // The emit loop below only revisits sub-keys pushed here.
            match plan.filter {
                None => {
                    for &subkey in &subkeys[range.start - span_start..range.end - span_start] {
                        let slot = unsafe { scratch.get_unchecked_mut(subkey as usize) };
                        if *slot == 0 {
                            touched.push(subkey as u32);
                        }
                        *slot += 1;
                    }
                }
                Some(f) => {
                    for i in range {
                        if f(&workers[i]) {
                            let subkey = subkeys[i - span_start];
                            let slot = unsafe { scratch.get_unchecked_mut(subkey as usize) };
                            if *slot == 0 {
                                touched.push(subkey as u32);
                            }
                            *slot += 1;
                        }
                    }
                }
            }
            for &subkey in &touched {
                let slot = unsafe { scratch.get_unchecked_mut(subkey as usize) };
                run.push((base + subkey as u64, *slot));
                *slot = 0;
            }
            touched.clear();
        }
        batch_lo = batch_hi;
    }
    // Equal keys (same cell, different establishments) may interleave
    // arbitrarily under the sort; the merge's aggregates are commutative,
    // so the final marginal does not depend on their order.
    sort_run_by_key(&mut run, max_key, |&(key, _)| key);
    run
}

/// Minimum run length for which the counting passes of the radix sort
/// amortise; shorter runs go straight to the comparison sort.
const RADIX_MIN_LEN: usize = 1 << 12;

/// Sort a shard run by cell key.
///
/// Cell keys are mixed-radix codes bounded by the spec's cell-domain
/// size, so `max_key` (an inclusive upper bound tracked during emission)
/// is typically far below 64 bits. When it fits 32 bits and the run is
/// long enough, a two-pass LSD radix sort over 16-bit digits replaces the
/// comparison sort — the post-kernel sort is the largest cost shared by
/// the scalar and SIMD evaluators, so cutting it speeds both up and lets
/// the vectorized kernels show through. Wide domains and short runs fall
/// back to the standard unstable sort. Both paths order solely by key and
/// feed the same commutative merge, so the choice never changes results.
pub(crate) fn sort_run_by_key<T: Copy>(run: &mut Vec<T>, max_key: u64, key_of: impl Fn(&T) -> u64) {
    const DIGIT_BITS: u32 = 16;
    const BUCKETS: usize = 1 << DIGIT_BITS;
    let bits = u64::BITS - max_key.leading_zeros();
    let passes = bits.div_ceil(DIGIT_BITS);
    if passes > 2 || run.len() < RADIX_MIN_LEN {
        run.sort_unstable_by_key(|t| key_of(t));
        return;
    }
    let mut aux: Vec<T> = run.clone();
    let mut counts = vec![0usize; BUCKETS];
    for pass in 0..passes {
        let shift = pass * DIGIT_BITS;
        if pass > 0 {
            counts.fill(0);
        }
        for t in run.iter() {
            counts[((key_of(t) >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        let mut total = 0usize;
        for c in counts.iter_mut() {
            let n = *c;
            *c = total;
            total += n;
        }
        for t in run.iter() {
            let digit = ((key_of(t) >> shift) as usize) & (BUCKETS - 1);
            aux[counts[digit]] = *t;
            counts[digit] += 1;
        }
        std::mem::swap(run, &mut aux);
    }
}

/// Deterministic k-way merge of per-shard sorted runs, aggregating every
/// `(cell, establishment)` contribution with the same key into one
/// [`CellStats`].
pub(crate) fn merge_runs(runs: Vec<Vec<(u64, u32)>>) -> Vec<(CellKey, CellStats)> {
    let mut pos = vec![0usize; runs.len()];
    let mut out: Vec<(CellKey, CellStats)> =
        Vec::with_capacity(runs.iter().map(Vec::len).max().unwrap_or(0));
    loop {
        let mut min_key: Option<u64> = None;
        for (run, &p) in runs.iter().zip(&pos) {
            if let Some(&(key, _)) = run.get(p) {
                min_key = Some(min_key.map_or(key, |m: u64| m.min(key)));
            }
        }
        let Some(key) = min_key else { break };
        let mut stats = CellStats {
            count: 0,
            establishments: 0,
            max_establishment: 0,
        };
        for (run, p) in runs.iter().zip(&mut pos) {
            while let Some(&(k, contribution)) = run.get(*p) {
                if k != key {
                    break;
                }
                stats.count += contribution as u64;
                stats.establishments += 1;
                stats.max_establishment = stats.max_establishment.max(contribution);
                *p += 1;
            }
        }
        out.push((CellKey(key), stats));
    }
    out
}

/// The pre-index evaluator: one pass over the joined `WorkerFull`
/// relation, accumulating a global `(cell, establishment)` hash map.
///
/// Retained as the brute-force *reference* — ground truth for property
/// tests and the old-vs-new benchmark, never a production path; see
/// [`compute_marginal`] for the indexed engine. Only compiled under the
/// default-off `reference` feature.
#[cfg(feature = "reference")]
pub fn compute_marginal_legacy(dataset: &Dataset, spec: &MarginalSpec) -> Marginal {
    // Unfiltered: every worker survives, no counting pass needed.
    legacy_with_survivors(dataset, spec, dataset.num_workers(), |_| true)
}

/// Filtered variant of [`compute_marginal_legacy`]. Only compiled under
/// the default-off `reference` feature.
#[cfg(feature = "reference")]
pub fn compute_marginal_filtered_legacy<F>(
    dataset: &Dataset,
    spec: &MarginalSpec,
    filter: F,
) -> Marginal
where
    F: Fn(&Worker) -> bool,
{
    // One cheap counting pass so the map is sized from the rows that
    // actually survive the filter (this is the fallback path; clarity and
    // a right-sized table beat avoiding the extra predicate evaluations).
    let survivors = dataset.workers().iter().filter(|w| filter(w)).count();
    legacy_with_survivors(dataset, spec, survivors, filter)
}

#[cfg(feature = "reference")]
fn legacy_with_survivors<F>(
    dataset: &Dataset,
    spec: &MarginalSpec,
    survivors: usize,
    filter: F,
) -> Marginal
where
    F: Fn(&Worker) -> bool,
{
    let schema = CellSchema::new(spec, dataset);
    // Accumulate per-(cell, establishment) counts. Establishments are dense
    // u32 ids, so key by (cell, establishment) pair. The map holds at most
    // one entry per filter-surviving worker, and at most one per
    // (establishment, worker-sub-domain code) pair — size from whichever
    // bound is tighter, so wide specs don't rehash and empty filters don't
    // allocate a workplace-sized table.
    let capacity = survivors.min(
        dataset
            .num_workplaces()
            .saturating_mul(spec.worker_domain_size()),
    );
    let mut per_estab: HashMap<(u64, u32), u32> = HashMap::with_capacity(capacity);

    let mut values: Vec<u32> = Vec::with_capacity(schema.attrs().len());
    for worker in dataset.workers() {
        if !filter(worker) {
            continue;
        }
        let wp = dataset.workplace(dataset.employer_of(worker.id));
        values.clear();
        for attr in &spec.workplace_attrs {
            values.push(attr.value(wp));
        }
        for attr in &spec.worker_attrs {
            values.push(attr.value(worker));
        }
        let key = schema.encode(&values);
        *per_estab.entry((key.0, wp.id.0)).or_insert(0) += 1;
    }

    let mut cells: BTreeMap<CellKey, CellStats> = BTreeMap::new();
    for (&(key, _estab), &count) in &per_estab {
        let entry = cells.entry(CellKey(key)).or_insert(CellStats {
            count: 0,
            establishments: 0,
            max_establishment: 0,
        });
        entry.count += count as u64;
        entry.establishments += 1;
        entry.max_establishment = entry.max_establishment.max(count);
    }

    Marginal::new(spec.clone(), schema, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{MarginalSpec, WorkerAttr, WorkplaceAttr};
    use lodes::{Generator, GeneratorConfig, Sex};
    use std::collections::BTreeMap;

    #[test]
    fn radix_run_sort_matches_comparison_sort() {
        // Long enough to take the radix path, with duplicate keys and a
        // key range that needs both 16-bit digit passes.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut radix: Vec<(u64, u32)> = (0..(RADIX_MIN_LEN * 2))
            .map(|_| (next() % 100_000, next() as u32))
            .collect();
        let mut comparison = radix.clone();
        sort_run_by_key(&mut radix, 99_999, |&(key, _)| key);
        comparison.sort_by_key(|&(key, _)| key);
        // The radix sort is stable, so equal keys keep insertion order and
        // the full pair sequences match the stable comparison sort's.
        assert_eq!(radix, comparison);

        // Below the length threshold (and for > 32-bit domains) the
        // fallback must still order by key.
        let mut short: Vec<(u64, u32)> = (0..64).map(|_| (next(), next() as u32)).collect();
        sort_run_by_key(&mut short, u64::MAX, |&(key, _)| key);
        assert!(short.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(4)).generate()
    }

    /// Brute-force recomputation of one cell's stats.
    fn brute_force_cell(d: &Dataset, spec: &MarginalSpec, key_values: &[u32]) -> (u64, u32, u32) {
        let mut per_estab: BTreeMap<u32, u32> = BTreeMap::new();
        for w in d.workers() {
            let wp = d.workplace(d.employer_of(w.id));
            let mut vals = Vec::new();
            for a in &spec.workplace_attrs {
                vals.push(a.value(wp));
            }
            for a in &spec.worker_attrs {
                vals.push(a.value(w));
            }
            if vals == key_values {
                *per_estab.entry(wp.id.0).or_insert(0) += 1;
            }
        }
        let count: u64 = per_estab.values().map(|&c| c as u64).sum();
        let estabs = per_estab.len() as u32;
        let max = per_estab.values().copied().max().unwrap_or(0);
        (count, estabs, max)
    }

    fn assert_marginals_identical(a: &Marginal, b: &Marginal) {
        assert_eq!(a.num_cells(), b.num_cells());
        assert_eq!(a.total(), b.total());
        for ((ka, sa), (kb, sb)) in a.iter().zip(b.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn engine_matches_brute_force() {
        let d = dataset();
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::Naics, WorkplaceAttr::Ownership],
            vec![WorkerAttr::Sex],
        );
        let m = compute_marginal(&d, &spec);
        // Check ten arbitrary nonzero cells + totals.
        for (key, stats) in m.iter().take(10) {
            let vals = m.schema().decode(key);
            let (count, estabs, max) = brute_force_cell(&d, &spec, &vals);
            assert_eq!(stats.count, count);
            assert_eq!(stats.establishments, estabs);
            assert_eq!(stats.max_establishment, max);
        }
        assert_eq!(m.total() as usize, d.num_jobs());
    }

    #[cfg(feature = "reference")]
    #[test]
    fn indexed_engine_matches_legacy_engine() {
        let d = dataset();
        let index = TabulationIndex::build(&d);
        let specs = [
            MarginalSpec::new(vec![], vec![]),
            MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]),
            MarginalSpec::new(vec![], vec![WorkerAttr::Age, WorkerAttr::Race]),
            MarginalSpec::new(
                vec![
                    WorkplaceAttr::Place,
                    WorkplaceAttr::Naics,
                    WorkplaceAttr::Ownership,
                ],
                vec![WorkerAttr::Sex, WorkerAttr::Education],
            ),
        ];
        for spec in &specs {
            let legacy = compute_marginal_legacy(&d, spec);
            assert_marginals_identical(&index.marginal(spec), &legacy);
            // Filtered path too.
            let legacy_f = compute_marginal_filtered_legacy(&d, spec, |w| w.sex == Sex::Female);
            let indexed_f = index.marginal_filtered(spec, |w| w.sex == Sex::Female);
            assert_marginals_identical(&indexed_f, &legacy_f);
        }
    }

    #[test]
    fn sharded_tabulation_is_bit_identical_at_any_thread_count() {
        let d = dataset();
        let index = TabulationIndex::build(&d);
        let spec = MarginalSpec::new(
            vec![
                WorkplaceAttr::Place,
                WorkplaceAttr::Naics,
                WorkplaceAttr::Ownership,
            ],
            vec![WorkerAttr::Sex, WorkerAttr::Education],
        );
        let reference = index.marginal_sharded(&spec, 1);
        for threads in [2, 3, 7, 64] {
            assert_marginals_identical(&index.marginal_sharded(&spec, threads), &reference);
        }
        let filtered_ref = index.marginal_filtered_sharded(&spec, |w| w.sex == Sex::Male, 1);
        for threads in [2, 5, 16] {
            let m = index.marginal_filtered_sharded(&spec, |w| w.sex == Sex::Male, threads);
            assert_marginals_identical(&m, &filtered_ref);
        }
    }

    /// The dispatch choice must never change a released cell: scalar and
    /// Auto (AVX2 on this CI hardware) kernels agree bit-for-bit on every
    /// spec shape, filtered and not, at several shard counts.
    #[test]
    fn simd_and_scalar_kernels_are_bit_identical() {
        let d = dataset();
        let index = TabulationIndex::build(&d);
        let specs = [
            MarginalSpec::new(vec![], vec![]),
            MarginalSpec::new(vec![WorkplaceAttr::Block], vec![]),
            MarginalSpec::new(vec![], vec![WorkerAttr::Age, WorkerAttr::Race]),
            MarginalSpec::new(
                vec![WorkplaceAttr::Place, WorkplaceAttr::Naics],
                vec![
                    WorkerAttr::Sex,
                    WorkerAttr::Age,
                    WorkerAttr::Race,
                    WorkerAttr::Ethnicity,
                    WorkerAttr::Education,
                ],
            ),
        ];
        for spec in &specs {
            for threads in [1, 3] {
                let scalar = index.marginal_sharded_with_kernel(spec, threads, Kernel::Scalar);
                let auto = index.marginal_sharded_with_kernel(spec, threads, Kernel::Auto);
                assert_marginals_identical(&auto, &scalar);
                let scalar_f = index.marginal_filtered_sharded_with_kernel(
                    spec,
                    |w| w.sex == Sex::Female,
                    threads,
                    Kernel::Scalar,
                );
                let auto_f = index.marginal_filtered_sharded_with_kernel(
                    spec,
                    |w| w.sex == Sex::Female,
                    threads,
                    Kernel::Auto,
                );
                assert_marginals_identical(&auto_f, &scalar_f);
            }
        }
    }

    #[test]
    fn effective_shards_collapse_small_datasets() {
        let d = dataset();
        let index = TabulationIndex::build(&d);
        // The test universe (~40k workers) is below the 2^16-per-shard
        // floor: any requested parallelism collapses to the 1T path.
        for threads in [1, 2, 8, 64] {
            assert_eq!(index.effective_shards(threads), 1);
        }
    }

    #[test]
    fn workplace_only_marginal_max_is_establishment_size() {
        let d = dataset();
        // Group by block: cells are small; every establishment contributes
        // its entire size to its one cell.
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Block], vec![]);
        let m = compute_marginal(&d, &spec);
        let mut by_block: BTreeMap<u32, u32> = BTreeMap::new();
        for wp in d.workplaces() {
            let max = by_block.entry(wp.block.0).or_insert(0);
            *max = (*max).max(d.establishment_size(wp.id));
        }
        for (key, stats) in m.iter() {
            let block = m.schema().value_of(key, 0);
            assert_eq!(stats.max_establishment, by_block[&block]);
        }
    }

    #[test]
    fn filtered_marginal_counts_only_matching_workers() {
        let d = dataset();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        let females = compute_marginal_filtered(&d, &spec, |w| w.sex == Sex::Female);
        let males = compute_marginal_filtered(&d, &spec, |w| w.sex == Sex::Male);
        let all = compute_marginal(&d, &spec);
        assert_eq!(females.total() + males.total(), all.total());
        // Filtered x_v never exceeds unfiltered x_v.
        for (key, f_stats) in females.iter() {
            let a_stats = all.cell(key).expect("filtered cell must exist unfiltered");
            assert!(f_stats.max_establishment <= a_stats.max_establishment);
            assert!(f_stats.count <= a_stats.count);
        }
    }

    #[test]
    fn empty_filter_yields_empty_marginal() {
        let d = dataset();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]);
        let m = compute_marginal_filtered(&d, &spec, |_| false);
        assert_eq!(m.num_cells(), 0);
        assert_eq!(m.total(), 0);
        // The legacy reference agrees (and its capacity heuristic now
        // sizes from the zero filter-surviving rows).
        #[cfg(feature = "reference")]
        {
            let legacy = compute_marginal_filtered_legacy(&d, &spec, |_| false);
            assert_eq!(legacy.num_cells(), 0);
            assert_eq!(legacy.total(), 0);
        }
    }

    #[test]
    fn full_marginal_spec_with_all_attrs() {
        let d = dataset();
        let spec = MarginalSpec::new(
            vec![
                WorkplaceAttr::Place,
                WorkplaceAttr::Naics,
                WorkplaceAttr::Ownership,
            ],
            vec![
                WorkerAttr::Sex,
                WorkerAttr::Age,
                WorkerAttr::Race,
                WorkerAttr::Ethnicity,
                WorkerAttr::Education,
            ],
        );
        let m = compute_marginal(&d, &spec);
        assert_eq!(m.total() as usize, d.num_jobs());
        // Sparsity: nonzero cells are a tiny fraction of the domain.
        assert!((m.num_cells() as u64) < m.schema().domain_size() / 10);
        // The widest worker sub-domain still matches the legacy engine.
        #[cfg(feature = "reference")]
        assert_marginals_identical(&m, &compute_marginal_legacy(&d, &spec));
    }

    /// Worker-balanced shard boundaries produce bit-identical marginals to
    /// the single-shard (contiguous) evaluation on a skewed universe —
    /// the merge, not the chunking, carries the determinism guarantee.
    #[test]
    fn worker_balanced_sharding_is_bit_identical_to_contiguous() {
        let d = Generator::new(GeneratorConfig {
            target_establishments: 400,
            seed: 99,
            ..GeneratorConfig::default()
        })
        .generate();
        let index = TabulationIndex::build(&d);
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::County, WorkplaceAttr::Naics],
            vec![WorkerAttr::Sex, WorkerAttr::Age],
        );
        let contiguous = index.marginal_sharded(&spec, 1);
        for threads in [2, 3, 5, 13, 64] {
            assert_marginals_identical(&index.marginal_sharded(&spec, threads), &contiguous);
        }
    }
}
