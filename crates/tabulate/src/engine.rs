//! Marginal evaluation: one pass over the data, tracking per-establishment
//! contributions per cell.
//!
//! Two evaluation paths:
//!
//! * **Workplace-only marginals** iterate establishments — each
//!   establishment lands in exactly one cell, contributing its whole size.
//! * **Marginals with worker attributes** iterate the joined `WorkerFull`
//!   relation, first accumulating per-(cell, establishment) counts so the
//!   per-cell maximum single-establishment contribution `x_v` is exact.

use crate::attr::MarginalSpec;
use crate::cell::{CellKey, CellSchema};
use crate::marginal::{CellStats, Marginal};
use lodes::{Dataset, Worker};
use std::collections::{BTreeMap, HashMap};

/// Evaluate the marginal query `q_V(D)`.
pub fn compute_marginal(dataset: &Dataset, spec: &MarginalSpec) -> Marginal {
    compute_marginal_filtered(dataset, spec, |_| true)
}

/// Evaluate a marginal over only the workers matching `filter`.
///
/// The filter models single-query workloads like Ranking 2 ("number of
/// female employees with a bachelor's degree per place×industry×ownership
/// cell"): group by workplace attributes while restricting the counted
/// population. Establishment metadata (`x_v`, contributing-establishment
/// counts) refer to the *filtered* population, matching Lemma 8.5's
/// definition of `x_v` as the largest per-establishment count of workers
/// matching the query condition.
pub fn compute_marginal_filtered<F>(dataset: &Dataset, spec: &MarginalSpec, filter: F) -> Marginal
where
    F: Fn(&Worker) -> bool,
{
    let schema = CellSchema::new(spec, dataset);
    // Accumulate per-(cell, establishment) counts. Establishments are dense
    // u32 ids, so key by (cell, establishment) pair.
    let mut per_estab: HashMap<(u64, u32), u32> =
        HashMap::with_capacity(dataset.num_workplaces() * 2);

    let mut values: Vec<u32> = Vec::with_capacity(schema.attrs().len());
    for worker in dataset.workers() {
        if !filter(worker) {
            continue;
        }
        let wp = dataset.workplace(dataset.employer_of(worker.id));
        values.clear();
        for attr in &spec.workplace_attrs {
            values.push(attr.value(wp));
        }
        for attr in &spec.worker_attrs {
            values.push(attr.value(worker));
        }
        let key = schema.encode(&values);
        *per_estab.entry((key.0, wp.id.0)).or_insert(0) += 1;
    }

    let mut cells: BTreeMap<CellKey, CellStats> = BTreeMap::new();
    for (&(key, _estab), &count) in &per_estab {
        let entry = cells.entry(CellKey(key)).or_insert(CellStats {
            count: 0,
            establishments: 0,
            max_establishment: 0,
        });
        entry.count += count as u64;
        entry.establishments += 1;
        entry.max_establishment = entry.max_establishment.max(count);
    }

    Marginal::new(spec.clone(), schema, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{MarginalSpec, WorkerAttr, WorkplaceAttr};
    use lodes::{Generator, GeneratorConfig, Sex};

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(4)).generate()
    }

    /// Brute-force recomputation of one cell's stats.
    fn brute_force_cell(d: &Dataset, spec: &MarginalSpec, key_values: &[u32]) -> (u64, u32, u32) {
        let mut per_estab: BTreeMap<u32, u32> = BTreeMap::new();
        for w in d.workers() {
            let wp = d.workplace(d.employer_of(w.id));
            let mut vals = Vec::new();
            for a in &spec.workplace_attrs {
                vals.push(a.value(wp));
            }
            for a in &spec.worker_attrs {
                vals.push(a.value(w));
            }
            if vals == key_values {
                *per_estab.entry(wp.id.0).or_insert(0) += 1;
            }
        }
        let count: u64 = per_estab.values().map(|&c| c as u64).sum();
        let estabs = per_estab.len() as u32;
        let max = per_estab.values().copied().max().unwrap_or(0);
        (count, estabs, max)
    }

    #[test]
    fn engine_matches_brute_force() {
        let d = dataset();
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::Naics, WorkplaceAttr::Ownership],
            vec![WorkerAttr::Sex],
        );
        let m = compute_marginal(&d, &spec);
        // Check ten arbitrary nonzero cells + totals.
        for (key, stats) in m.iter().take(10) {
            let vals = m.schema().decode(key);
            let (count, estabs, max) = brute_force_cell(&d, &spec, &vals);
            assert_eq!(stats.count, count);
            assert_eq!(stats.establishments, estabs);
            assert_eq!(stats.max_establishment, max);
        }
        assert_eq!(m.total() as usize, d.num_jobs());
    }

    #[test]
    fn workplace_only_marginal_max_is_establishment_size() {
        let d = dataset();
        // Group by block: cells are small; every establishment contributes
        // its entire size to its one cell.
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Block], vec![]);
        let m = compute_marginal(&d, &spec);
        let mut by_block: BTreeMap<u32, u32> = BTreeMap::new();
        for wp in d.workplaces() {
            let max = by_block.entry(wp.block.0).or_insert(0);
            *max = (*max).max(d.establishment_size(wp.id));
        }
        for (key, stats) in m.iter() {
            let block = m.schema().value_of(key, 0);
            assert_eq!(stats.max_establishment, by_block[&block]);
        }
    }

    #[test]
    fn filtered_marginal_counts_only_matching_workers() {
        let d = dataset();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        let females = compute_marginal_filtered(&d, &spec, |w| w.sex == Sex::Female);
        let males = compute_marginal_filtered(&d, &spec, |w| w.sex == Sex::Male);
        let all = compute_marginal(&d, &spec);
        assert_eq!(females.total() + males.total(), all.total());
        // Filtered x_v never exceeds unfiltered x_v.
        for (key, f_stats) in females.iter() {
            let a_stats = all.cell(key).expect("filtered cell must exist unfiltered");
            assert!(f_stats.max_establishment <= a_stats.max_establishment);
            assert!(f_stats.count <= a_stats.count);
        }
    }

    #[test]
    fn empty_filter_yields_empty_marginal() {
        let d = dataset();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]);
        let m = compute_marginal_filtered(&d, &spec, |_| false);
        assert_eq!(m.num_cells(), 0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn full_marginal_spec_with_all_attrs() {
        let d = dataset();
        let spec = MarginalSpec::new(
            vec![
                WorkplaceAttr::Place,
                WorkplaceAttr::Naics,
                WorkplaceAttr::Ownership,
            ],
            vec![
                WorkerAttr::Sex,
                WorkerAttr::Age,
                WorkerAttr::Race,
                WorkerAttr::Ethnicity,
                WorkerAttr::Education,
            ],
        );
        let m = compute_marginal(&d, &spec);
        assert_eq!(m.total() as usize, d.num_jobs());
        // Sparsity: nonzero cells are a tiny fraction of the domain.
        assert!((m.num_cells() as u64) < m.schema().domain_size() / 10);
    }
}
