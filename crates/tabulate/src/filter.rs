//! Declarative worker/workplace filters with serializable identity.
//!
//! The paper's sub-population workloads (Ranking 2's "female workers with
//! a bachelor's degree or higher", OnTheMap-style county × industry
//! extracts) restrict the tabulated population by a predicate over the
//! joined `WorkerFull` record. Before this module that predicate was an
//! opaque Rust closure: two textually identical filters built in two
//! places (or two processes) had no common identity, so tabulations could
//! only be shared when callers happened to reuse one `Arc`, and a resumed
//! publication season could verify nothing about a stored filter beyond a
//! boolean flag.
//!
//! [`FilterExpr`] replaces the closure with *data*:
//!
//! * **Leaves** compare one attribute of the joined record against a
//!   constant — [`FilterExpr::WorkerCmp`] / [`FilterExpr::WorkplaceCmp`]
//!   for a single comparison, [`FilterExpr::WorkerIn`] /
//!   [`FilterExpr::WorkplaceIn`] for set membership. Geography and
//!   industry restrictions (the LODES prefix queries: "establishments in
//!   county 12", "sector 31 or 44") are leaves over the denormalized
//!   workplace columns, built with [`FilterExpr::in_state`],
//!   [`FilterExpr::in_county`], [`FilterExpr::in_place`],
//!   [`FilterExpr::in_block`], [`FilterExpr::sector`], and
//!   [`FilterExpr::sectors_in`].
//! * **Combinators** [`and`](FilterExpr::and), [`or`](FilterExpr::or),
//!   [`not`](FilterExpr::not) compose arbitrarily.
//! * The whole tree serializes via serde (it is plain data), and
//!   [`FilterExpr::id`] derives a stable content digest — [`FilterId`] —
//!   that is identical for structurally equal expressions no matter when,
//!   where, or by which process they were constructed. The digest labels
//!   filters in keys, logs, and error messages; exact consumers compare
//!   [`FilterExpr::normalized`] forms, and provenance records the
//!   expression itself.
//!
//! # Evaluation
//!
//! [`FilterExpr::matches_record`] is the reference semantics: evaluate
//! the tree against one `(worker, workplace)` record pair. The production
//! path is [`FilterExpr::compile`], which specializes the expression
//! against a [`TabulationIndex`] into a [`CompiledFilter`] usable as the
//! `Fn(&Worker) -> bool` closure the tabulation engine consumes:
//!
//! * every workplace leaf is evaluated once per **establishment** from
//!   the index's columnar workplace codes, and establishments are deduped
//!   into distinct leaf-truth *patterns*;
//! * for each distinct pattern the full expression is collapsed into a
//!   truth table over the 768-point worker-attribute domain
//!   (2 × 8 × 6 × 2 × 4);
//! * a worker is then admitted by two array lookups — its establishment's
//!   pattern and its packed attribute code — regardless of how large the
//!   expression is.
//!
//! ```
//! use lodes::{Generator, GeneratorConfig, Education, Sex};
//! use tabulate::{workload1, FilterExpr, TabulationIndex};
//!
//! // Ranking 2's population: female workers with a bachelor's or higher.
//! let expr = FilterExpr::sex(Sex::Female)
//!     .and(FilterExpr::education_at_least(Education::BachelorOrHigher));
//!
//! // Serializable, with a stable identity.
//! let json = serde_json::to_string(&expr).unwrap();
//! let back: FilterExpr = serde_json::from_str(&json).unwrap();
//! assert_eq!(back.id(), expr.id());
//!
//! // Compiled against the columnar index, it drives a filtered marginal.
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//! let index = TabulationIndex::build(&dataset);
//! let marginal = index.marginal_expr(&workload1(), &expr);
//! assert!(marginal.total() > 0);
//! ```

use crate::attr::{WorkerAttr, WorkplaceAttr};
use crate::index::TabulationIndex;
use lodes::{
    AgeGroup, BlockId, CountyId, Education, Ethnicity, NaicsSector, Ownership, PlaceId, Race, Sex,
    StateId, Worker, Workplace,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Size of the full worker-attribute domain the compiled truth tables
/// cover (sex × age × race × ethnicity × education).
const WORKER_DOMAIN: usize = lodes::worker::WORKER_DOMAIN_SIZE;

/// Comparison operator of a filter leaf.
///
/// Attributes are categorical; comparisons act on their **dense index**
/// (the order the corresponding enum declares, e.g. [`AgeGroup`] and
/// [`Education`] ascend, so `Ge` reads "at least"). For nominal attributes
/// (race, NAICS sector, geography ids) only `Eq`/`Ne` are meaningful —
/// the others are well-defined but order-arbitrary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (dense-index order).
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Cmp {
    fn eval(self, lhs: u32, rhs: u32) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
        }
    }

    fn tag(self) -> u64 {
        match self {
            Cmp::Eq => 0,
            Cmp::Ne => 1,
            Cmp::Lt => 2,
            Cmp::Le => 3,
            Cmp::Gt => 4,
            Cmp::Ge => 5,
        }
    }
}

/// Stable content digest of a [`FilterExpr`].
///
/// Structurally equal expressions (after canonicalizing membership sets —
/// see [`FilterExpr::normalized`]) have equal ids regardless of which
/// process constructed them or whether they round-tripped through serde.
/// `And`/`Or` operand *order* is part of the identity (the constructors
/// do not reassociate), so build filters the same way on both sides of a
/// cache or resume boundary.
///
/// The digest is FNV-1a over a tagged pre-order encoding of the
/// normalized tree, matching the fingerprint idiom used for datasets and
/// truth marginals elsewhere in the workspace. It is a *fingerprint* for
/// keys, labels, and messages — consumers that must never confuse two
/// filters (the engine's tabulation cache, season-resume verification)
/// compare normalized expressions directly rather than trusting 64 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FilterId(pub u64);

impl std::fmt::Display for FilterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A declarative filter over the joined worker × workplace record.
///
/// See the [module docs](self) for semantics, construction helpers, and
/// the compilation pipeline. Variants are public so expressions can be
/// pattern-matched and stored; prefer the typed constructors
/// ([`sex`](Self::sex), [`in_county`](Self::in_county),
/// [`sectors_in`](Self::sectors_in), …) over building leaves by hand —
/// they canonicalize membership sets and keep attribute codes in range.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FilterExpr {
    /// Matches every record (the unfiltered population).
    All,
    /// Compare one worker attribute's dense code against a constant.
    WorkerCmp(WorkerAttr, Cmp, u32),
    /// Worker attribute code is a member of the (sorted) set.
    WorkerIn(WorkerAttr, Vec<u32>),
    /// Compare one workplace attribute's dense code against a constant.
    WorkplaceCmp(WorkplaceAttr, Cmp, u32),
    /// Workplace attribute code is a member of the (sorted) set.
    WorkplaceIn(WorkplaceAttr, Vec<u32>),
    /// Every operand matches (empty = matches all).
    And(Vec<FilterExpr>),
    /// At least one operand matches (empty = matches none).
    Or(Vec<FilterExpr>),
    /// The operand does not match.
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    // ---- worker-attribute constructors ----

    /// Workers of the given sex.
    pub fn sex(sex: Sex) -> Self {
        FilterExpr::WorkerCmp(WorkerAttr::Sex, Cmp::Eq, sex.index() as u32)
    }

    /// Workers in the given age group.
    pub fn age(age: AgeGroup) -> Self {
        FilterExpr::WorkerCmp(WorkerAttr::Age, Cmp::Eq, age.index() as u32)
    }

    /// Workers in any of the given age groups.
    pub fn age_in(ages: impl IntoIterator<Item = AgeGroup>) -> Self {
        FilterExpr::WorkerIn(
            WorkerAttr::Age,
            canonical_set(ages.into_iter().map(|a| a.index() as u32)),
        )
    }

    /// Workers of the given race.
    pub fn race(race: Race) -> Self {
        FilterExpr::WorkerCmp(WorkerAttr::Race, Cmp::Eq, race.index() as u32)
    }

    /// Workers of the given ethnicity.
    pub fn ethnicity(ethnicity: Ethnicity) -> Self {
        FilterExpr::WorkerCmp(WorkerAttr::Ethnicity, Cmp::Eq, ethnicity.index() as u32)
    }

    /// Workers with exactly the given educational attainment.
    pub fn education(education: Education) -> Self {
        FilterExpr::WorkerCmp(WorkerAttr::Education, Cmp::Eq, education.index() as u32)
    }

    /// Workers with at least the given educational attainment
    /// ([`Education`] ascends from `LessThanHighSchool`).
    pub fn education_at_least(education: Education) -> Self {
        FilterExpr::WorkerCmp(WorkerAttr::Education, Cmp::Ge, education.index() as u32)
    }

    // ---- workplace-attribute constructors (geography / industry) ----

    /// Establishments in the given state — the coarsest geography prefix.
    pub fn in_state(state: StateId) -> Self {
        FilterExpr::WorkplaceCmp(WorkplaceAttr::State, Cmp::Eq, state.0 as u32)
    }

    /// Establishments in the given county.
    pub fn in_county(county: CountyId) -> Self {
        FilterExpr::WorkplaceCmp(WorkplaceAttr::County, Cmp::Eq, county.0 as u32)
    }

    /// Establishments in the given Census place.
    pub fn in_place(place: PlaceId) -> Self {
        FilterExpr::WorkplaceCmp(WorkplaceAttr::Place, Cmp::Eq, place.0)
    }

    /// Establishments in the given census block — the finest geography
    /// prefix.
    pub fn in_block(block: BlockId) -> Self {
        FilterExpr::WorkplaceCmp(WorkplaceAttr::Block, Cmp::Eq, block.0)
    }

    /// Establishments in the given NAICS sector (two-digit industry
    /// prefix).
    pub fn sector(sector: NaicsSector) -> Self {
        FilterExpr::WorkplaceCmp(WorkplaceAttr::Naics, Cmp::Eq, sector.index() as u32)
    }

    /// Establishments in any of the given NAICS sectors.
    pub fn sectors_in(sectors: impl IntoIterator<Item = NaicsSector>) -> Self {
        FilterExpr::WorkplaceIn(
            WorkplaceAttr::Naics,
            canonical_set(sectors.into_iter().map(|s| s.index() as u32)),
        )
    }

    /// Establishments with the given ownership type.
    pub fn ownership(ownership: Ownership) -> Self {
        FilterExpr::WorkplaceCmp(WorkplaceAttr::Ownership, Cmp::Eq, ownership.index() as u32)
    }

    // ---- combinators ----

    /// Both this and `other` (operand order is part of the identity).
    pub fn and(self, other: FilterExpr) -> Self {
        match self {
            FilterExpr::And(mut ops) => {
                ops.push(other);
                FilterExpr::And(ops)
            }
            first => FilterExpr::And(vec![first, other]),
        }
    }

    /// Either this or `other` (operand order is part of the identity).
    pub fn or(self, other: FilterExpr) -> Self {
        match self {
            FilterExpr::Or(mut ops) => {
                ops.push(other);
                FilterExpr::Or(ops)
            }
            first => FilterExpr::Or(vec![first, other]),
        }
    }

    /// The negation of this expression.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        FilterExpr::Not(Box::new(self))
    }

    // ---- identity ----

    /// The expression's canonical form: membership sets sorted and
    /// deduplicated, everything else unchanged. Two expressions describe
    /// the same filter identity iff their normalized forms are equal;
    /// [`id`](Self::id) digests this form, and exact consumers (the
    /// tabulation cache, season-resume verification) compare it
    /// directly — the digest is a compact fingerprint for keys and
    /// messages, never the last word on equality.
    pub fn normalized(&self) -> FilterExpr {
        match self {
            FilterExpr::WorkerIn(attr, values) => {
                FilterExpr::WorkerIn(*attr, canonical_set(values.iter().copied()))
            }
            FilterExpr::WorkplaceIn(attr, values) => {
                FilterExpr::WorkplaceIn(*attr, canonical_set(values.iter().copied()))
            }
            FilterExpr::And(ops) => FilterExpr::And(ops.iter().map(Self::normalized).collect()),
            FilterExpr::Or(ops) => FilterExpr::Or(ops.iter().map(Self::normalized).collect()),
            FilterExpr::Not(op) => FilterExpr::Not(Box::new(op.normalized())),
            leaf => leaf.clone(),
        }
    }

    /// The expression's stable content digest; see [`FilterId`].
    pub fn id(&self) -> FilterId {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        self.fold(&mut hash);
        FilterId(hash)
    }

    /// Fold the tree into the FNV-1a state. Membership sets are
    /// canonicalized inline (a small scratch copy per `In` leaf), so the
    /// digest equals the [`normalized`](Self::normalized) form's without
    /// cloning the whole tree.
    fn fold(&self, hash: &mut u64) {
        fn word(hash: &mut u64, w: u64) {
            for byte in w.to_le_bytes() {
                *hash ^= byte as u64;
                *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        match self {
            FilterExpr::All => word(hash, 0),
            FilterExpr::WorkerCmp(attr, cmp, value) => {
                word(hash, 1);
                word(hash, worker_attr_tag(*attr));
                word(hash, cmp.tag());
                word(hash, *value as u64);
            }
            FilterExpr::WorkerIn(attr, values) => {
                word(hash, 2);
                word(hash, worker_attr_tag(*attr));
                let canonical = canonical_set(values.iter().copied());
                word(hash, canonical.len() as u64);
                for v in canonical {
                    word(hash, v as u64);
                }
            }
            FilterExpr::WorkplaceCmp(attr, cmp, value) => {
                word(hash, 3);
                word(hash, workplace_attr_tag(*attr));
                word(hash, cmp.tag());
                word(hash, *value as u64);
            }
            FilterExpr::WorkplaceIn(attr, values) => {
                word(hash, 4);
                word(hash, workplace_attr_tag(*attr));
                let canonical = canonical_set(values.iter().copied());
                word(hash, canonical.len() as u64);
                for v in canonical {
                    word(hash, v as u64);
                }
            }
            FilterExpr::And(ops) => {
                word(hash, 5);
                word(hash, ops.len() as u64);
                for op in ops {
                    op.fold(hash);
                }
            }
            FilterExpr::Or(ops) => {
                word(hash, 6);
                word(hash, ops.len() as u64);
                for op in ops {
                    op.fold(hash);
                }
            }
            FilterExpr::Not(op) => {
                word(hash, 7);
                op.fold(hash);
            }
        }
    }

    // ---- evaluation ----

    /// Reference semantics: does the joined record `(worker, workplace)`
    /// match? [`compile`](Self::compile) is bit-equivalent and is the
    /// path tabulation uses.
    pub fn matches_record(&self, worker: &Worker, workplace: &Workplace) -> bool {
        match self {
            FilterExpr::All => true,
            FilterExpr::WorkerCmp(attr, cmp, value) => cmp.eval(attr.value(worker), *value),
            FilterExpr::WorkerIn(attr, values) => member(values, attr.value(worker)),
            FilterExpr::WorkplaceCmp(attr, cmp, value) => cmp.eval(attr.value(workplace), *value),
            FilterExpr::WorkplaceIn(attr, values) => member(values, attr.value(workplace)),
            FilterExpr::And(ops) => ops.iter().all(|op| op.matches_record(worker, workplace)),
            FilterExpr::Or(ops) => ops.iter().any(|op| op.matches_record(worker, workplace)),
            FilterExpr::Not(op) => !op.matches_record(worker, workplace),
        }
    }

    /// True when no leaf touches a workplace attribute (the expression is
    /// a pure worker predicate and compiles to a single truth table).
    pub fn is_worker_only(&self) -> bool {
        match self {
            FilterExpr::All | FilterExpr::WorkerCmp(..) | FilterExpr::WorkerIn(..) => true,
            FilterExpr::WorkplaceCmp(..) | FilterExpr::WorkplaceIn(..) => false,
            FilterExpr::And(ops) | FilterExpr::Or(ops) => ops.iter().all(Self::is_worker_only),
            FilterExpr::Not(op) => op.is_worker_only(),
        }
    }

    /// Specialize this expression against `index` into the closure form
    /// the tabulation engine consumes; see the [module docs](self) for
    /// the pattern/truth-table construction.
    pub fn compile(&self, index: &TabulationIndex) -> CompiledFilter {
        // 1. Evaluate every workplace leaf per establishment and dedupe
        //    establishments into distinct leaf-truth patterns.
        let leaves = self.workplace_leaves();
        let n_estabs = index.num_establishments();
        let (pattern_of_estab, patterns) = if leaves.is_empty() {
            (Vec::new(), vec![Vec::new()])
        } else {
            let columns: Vec<&[u32]> = leaves
                .iter()
                .map(|leaf| index.workplace_column(leaf_attr(leaf)))
                .collect();
            let mut pattern_ids: HashMap<Vec<bool>, u32> = HashMap::new();
            let mut patterns: Vec<Vec<bool>> = Vec::new();
            let mut pattern_of_estab = Vec::with_capacity(n_estabs);
            // One scratch buffer reused across establishments; nearly
            // every establishment hits an existing pattern, so the loop
            // allocates only on the (rare) first sighting of a pattern.
            let mut truths: Vec<bool> = Vec::with_capacity(leaves.len());
            for e in 0..n_estabs {
                truths.clear();
                truths.extend(
                    leaves
                        .iter()
                        .zip(&columns)
                        .map(|(leaf, col)| leaf_eval(leaf, col[e])),
                );
                let id = match pattern_ids.get(&truths) {
                    Some(&id) => id,
                    None => {
                        let id = patterns.len() as u32;
                        patterns.push(truths.clone());
                        pattern_ids.insert(truths.clone(), id);
                        id
                    }
                };
                pattern_of_estab.push(id);
            }
            (pattern_of_estab, patterns)
        };
        // 2. Collapse the expression into one worker-domain truth table
        //    per distinct pattern.
        let tables: Vec<Vec<bool>> = patterns
            .iter()
            .map(|pattern| {
                (0..WORKER_DOMAIN)
                    .map(|code| {
                        let values = decode_worker_code(code);
                        let mut next_leaf = 0;
                        self.eval_specialized(&values, pattern, &mut next_leaf)
                    })
                    .collect()
            })
            .collect();
        // 3. Workers reach the closure as `&Worker` (in whatever order the
        //    caller iterates), so establishment lookup goes through the
        //    dense worker id — a filter-independent column the index
        //    built once and shares with every compiled filter.
        CompiledFilter {
            pattern_of_estab,
            employer_of_worker: Arc::clone(index.employer_of_worker()),
            tables,
        }
    }

    /// Workplace leaves in pre-order (the order `eval_specialized`
    /// consumes pattern entries in).
    fn workplace_leaves(&self) -> Vec<&FilterExpr> {
        fn walk<'a>(expr: &'a FilterExpr, out: &mut Vec<&'a FilterExpr>) {
            match expr {
                FilterExpr::WorkplaceCmp(..) | FilterExpr::WorkplaceIn(..) => out.push(expr),
                FilterExpr::And(ops) | FilterExpr::Or(ops) => {
                    for op in ops {
                        walk(op, out);
                    }
                }
                FilterExpr::Not(op) => walk(op, out),
                FilterExpr::All | FilterExpr::WorkerCmp(..) | FilterExpr::WorkerIn(..) => {}
            }
        }
        let mut leaves = Vec::new();
        walk(self, &mut leaves);
        leaves
    }

    /// Evaluate with worker attributes bound to `values` (dense codes in
    /// [`WORKER_ATTR_ORDER`] order) and workplace leaves answered from
    /// `pattern`. Every subtree is visited — no short-circuiting — so the
    /// leaf cursor stays aligned with the pre-order of
    /// [`workplace_leaves`](Self::workplace_leaves).
    fn eval_specialized(&self, values: &[u32; 5], pattern: &[bool], next_leaf: &mut usize) -> bool {
        match self {
            FilterExpr::All => true,
            FilterExpr::WorkerCmp(attr, cmp, value) => {
                cmp.eval(values[worker_attr_tag(*attr) as usize], *value)
            }
            FilterExpr::WorkerIn(attr, set) => member(set, values[worker_attr_tag(*attr) as usize]),
            FilterExpr::WorkplaceCmp(..) | FilterExpr::WorkplaceIn(..) => {
                let truth = pattern[*next_leaf];
                *next_leaf += 1;
                truth
            }
            FilterExpr::And(ops) => ops.iter().fold(true, |acc, op| {
                let v = op.eval_specialized(values, pattern, next_leaf);
                acc && v
            }),
            FilterExpr::Or(ops) => ops.iter().fold(false, |acc, op| {
                let v = op.eval_specialized(values, pattern, next_leaf);
                acc || v
            }),
            FilterExpr::Not(op) => !op.eval_specialized(values, pattern, next_leaf),
        }
    }
}

/// Attribute of a workplace leaf collected by `workplace_leaves`.
fn leaf_attr(leaf: &FilterExpr) -> WorkplaceAttr {
    match leaf {
        FilterExpr::WorkplaceCmp(attr, ..) | FilterExpr::WorkplaceIn(attr, _) => *attr,
        _ => unreachable!("workplace_leaves() only collects workplace leaves"),
    }
}

/// Evaluate a workplace leaf against one establishment's attribute code.
fn leaf_eval(leaf: &FilterExpr, code: u32) -> bool {
    match leaf {
        FilterExpr::WorkplaceCmp(_, cmp, value) => cmp.eval(code, *value),
        FilterExpr::WorkplaceIn(_, values) => member(values, code),
        _ => unreachable!("workplace_leaves() only collects workplace leaves"),
    }
}

/// Sorted, deduplicated membership set (the canonical leaf form).
fn canonical_set(values: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut values: Vec<u32> = values.collect();
    values.sort_unstable();
    values.dedup();
    values
}

/// Membership test. A linear scan: leaf sets are tiny (a handful of
/// categories), and it is correct whether or not a hand-built leaf was
/// left unsorted, so reference and compiled evaluation agree on any
/// input.
fn member(values: &[u32], code: u32) -> bool {
    values.contains(&code)
}

fn worker_attr_tag(attr: WorkerAttr) -> u64 {
    match attr {
        WorkerAttr::Sex => 0,
        WorkerAttr::Age => 1,
        WorkerAttr::Race => 2,
        WorkerAttr::Ethnicity => 3,
        WorkerAttr::Education => 4,
    }
}

fn workplace_attr_tag(attr: WorkplaceAttr) -> u64 {
    match attr {
        WorkplaceAttr::State => 0,
        WorkplaceAttr::County => 1,
        WorkplaceAttr::Place => 2,
        WorkplaceAttr::Block => 3,
        WorkplaceAttr::Naics => 4,
        WorkplaceAttr::Ownership => 5,
    }
}

/// Pack a worker's five attribute codes into one index over the
/// 768-point worker domain — [`lodes::histogram::WorkerCell`]'s packing (sex, age,
/// race, ethnicity, education), the one encoding shared with the
/// histogram layer so the two can never drift apart.
#[inline]
fn worker_code(worker: &Worker) -> usize {
    lodes::histogram::WorkerCell::of(worker).0 as usize
}

/// Inverse of [`worker_code`]: the five dense attribute codes in
/// `worker_attr_tag` slot order (sex, age, race, ethnicity, education).
fn decode_worker_code(code: usize) -> [u32; 5] {
    let (sex, age, race, ethnicity, education) = lodes::histogram::WorkerCell(code as u16).decode();
    [
        sex.index() as u32,
        age.index() as u32,
        race.index() as u32,
        ethnicity.index() as u32,
        education.index() as u32,
    ]
}

/// A [`FilterExpr`] specialized against one [`TabulationIndex`]:
/// per-establishment workplace-leaf patterns plus one worker-domain truth
/// table per distinct pattern. `matches` is two array lookups per worker.
///
/// Only valid for workers of the index it was compiled against. `Send +
/// Sync` (plain arrays), so the sharded tabulation loop can borrow it
/// from every worker thread.
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    /// Pattern id per establishment (empty for worker-only expressions).
    pattern_of_estab: Vec<u32>,
    /// Establishment per dense worker id, shared with the index it was
    /// compiled against (unused by worker-only expressions).
    employer_of_worker: Arc<Vec<u32>>,
    /// One worker-domain truth table per distinct pattern.
    tables: Vec<Vec<bool>>,
}

impl CompiledFilter {
    /// Does `worker` (a record of the compiled-against index's dataset)
    /// match?
    #[inline]
    pub fn matches(&self, worker: &Worker) -> bool {
        let pattern = if self.pattern_of_estab.is_empty() {
            0
        } else {
            self.pattern_of_estab[self.employer_of_worker[worker.id.0 as usize] as usize] as usize
        };
        self.tables[pattern][worker_code(worker)]
    }

    /// Number of distinct workplace-leaf patterns (1 for worker-only
    /// expressions).
    pub fn num_patterns(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::MarginalSpec;
    use crate::engine::compute_marginal_filtered;
    use lodes::{Dataset, Generator, GeneratorConfig};

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(23)).generate()
    }

    fn ranking2() -> FilterExpr {
        FilterExpr::sex(Sex::Female)
            .and(FilterExpr::education_at_least(Education::BachelorOrHigher))
    }

    #[test]
    fn identity_is_structural_not_pointer() {
        let a = ranking2();
        let b = ranking2();
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        // Different structure, different identity.
        assert_ne!(a.id(), FilterExpr::sex(Sex::Female).id());
        assert_ne!(a.id(), FilterExpr::All.id());
        // Operand order is part of the identity.
        let swapped = FilterExpr::education_at_least(Education::BachelorOrHigher)
            .and(FilterExpr::sex(Sex::Female));
        assert_ne!(a.id(), swapped.id());
        // Set canonicalization: insertion order does not matter.
        let s1 = FilterExpr::sectors_in([NaicsSector::ALL[3], NaicsSector::ALL[0]]);
        let s2 = FilterExpr::sectors_in([NaicsSector::ALL[0], NaicsSector::ALL[3]]);
        assert_eq!(s1.id(), s2.id());
        // Hand-built unsorted leaves digest like canonical ones, and
        // normalize to the constructor-built form exactly.
        let hand = FilterExpr::WorkplaceIn(WorkplaceAttr::Naics, vec![3, 0, 3]);
        assert_eq!(hand.id(), s1.id());
        assert_eq!(hand.normalized(), s1);
        // Normalization is idempotent and identity-preserving.
        assert_eq!(a.normalized(), a);
        assert_eq!(a.normalized().id(), a.id());
    }

    #[test]
    fn serde_round_trip_preserves_identity() {
        let exprs = [
            FilterExpr::All,
            ranking2(),
            FilterExpr::in_county(CountyId(2))
                .and(FilterExpr::sectors_in([NaicsSector::ALL[4]]))
                .or(FilterExpr::age_in([AgeGroup::A22_24, AgeGroup::A25_34]).not()),
        ];
        for expr in exprs {
            let json = serde_json::to_string(&expr).unwrap();
            let back: FilterExpr = serde_json::from_str(&json).unwrap();
            assert_eq!(back, expr);
            assert_eq!(back.id(), expr.id());
        }
    }

    #[test]
    fn compiled_matches_reference_semantics() {
        let d = dataset();
        let index = TabulationIndex::build(&d);
        let exprs = [
            FilterExpr::All,
            ranking2(),
            FilterExpr::in_state(StateId(0)),
            FilterExpr::in_county(CountyId(1)).or(FilterExpr::ownership(Ownership::ALL[0])),
            FilterExpr::sector(NaicsSector::ALL[2])
                .and(FilterExpr::sex(Sex::Male))
                .not(),
            FilterExpr::Or(vec![]),
            FilterExpr::And(vec![]),
        ];
        for expr in &exprs {
            let compiled = expr.compile(&index);
            for worker in d.workers() {
                let wp = d.workplace(d.employer_of(worker.id));
                assert_eq!(
                    compiled.matches(worker),
                    expr.matches_record(worker, wp),
                    "{expr:?} disagrees on worker {:?}",
                    worker.id
                );
            }
        }
    }

    #[test]
    fn expr_marginal_matches_closure_marginal() {
        let d = dataset();
        let index = TabulationIndex::build(&d);
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::Naics, WorkplaceAttr::Ownership],
            vec![crate::attr::WorkerAttr::Sex],
        );
        let expr = ranking2().or(FilterExpr::in_place(PlaceId(0)));
        let via_expr = index.marginal_expr(&spec, &expr);
        let via_closure = compute_marginal_filtered(&d, &spec, |w| {
            let wp = d.workplace(d.employer_of(w.id));
            expr.matches_record(w, wp)
        });
        assert_eq!(via_expr.num_cells(), via_closure.num_cells());
        for ((ka, sa), (kb, sb)) in via_expr.iter().zip(via_closure.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn worker_only_expressions_skip_establishment_lookup() {
        let d = dataset();
        let index = TabulationIndex::build(&d);
        assert!(ranking2().is_worker_only());
        assert!(!FilterExpr::in_state(StateId(0)).is_worker_only());
        let compiled = ranking2().compile(&index);
        assert_eq!(compiled.num_patterns(), 1);
        // Geography splits establishments into at most two patterns.
        let compiled = FilterExpr::in_state(StateId(0)).compile(&index);
        assert!(compiled.num_patterns() <= 2);
    }

    #[test]
    fn worker_code_matches_histogram_packing() {
        // The compiled truth tables and the histogram layer must index
        // the 768-point worker domain identically.
        for code in 0..WORKER_DOMAIN {
            let values = decode_worker_code(code);
            let (sex, age, race, ethnicity, education) =
                lodes::histogram::WorkerCell(code as u16).decode();
            assert_eq!(
                values,
                [
                    sex.index() as u32,
                    age.index() as u32,
                    race.index() as u32,
                    ethnicity.index() as u32,
                    education.index() as u32
                ]
            );
        }
        let d = dataset();
        for w in d.workers().iter().take(100) {
            assert_eq!(
                worker_code(w),
                lodes::histogram::WorkerCell::of(w).0 as usize
            );
        }
    }
}
