//! QWI-style job-flow statistics over consecutive quarters.
//!
//! The paper's opening motivation: ER-EE publications "are used to compute
//! national and local economic indicators, including job creation and
//! destruction statistics" — the Quarterly Workforce Indicators. Given two
//! snapshots of the same establishment frame, per cell `v`:
//!
//! * **beginning employment** `B(v)` — jobs in quarter `t`;
//! * **ending employment** `E(v)` — jobs in quarter `t+1`;
//! * **job creation** `JC(v) = Σ_w max(0, n_{t+1,w} − n_{t,w})` over the
//!   cell's establishments;
//! * **job destruction** `JD(v) = Σ_w max(0, n_{t,w} − n_{t+1,w})`;
//! * **net change** `E − B = JC − JD` (an identity, checked in tests).
//!
//! For private release, each statistic carries its own `x_v` analogue: the
//! largest single-establishment contribution to that statistic
//! ([`FlowStats::max_beginning`], [`FlowStats::max_creation`], …). A strong
//! α-neighbor step perturbs one establishment's employment by at most an
//! α-fraction per quarter, so flow queries plug into the same
//! smooth-sensitivity machinery as level queries (the per-establishment
//! flow contribution is itself bounded by the size change).
//!
//! # Evaluation
//!
//! Flow tabulation runs on a **pair** of [`TabulationIndex`]es sharing one
//! establishment frame, with the same shape as the level-marginal engine
//! in [`crate::engine`]: the establishment loop is sharded into contiguous
//! CSR chunks, each shard emits a key-sorted run of per-establishment
//! `(key, before, after)` contributions, and a deterministic k-way merge
//! aggregates equal keys into [`FlowStats`]. Every aggregate (sums of
//! `B`/`E`/`JC`/`JD`, per-statistic maxima) is commutative, so the result
//! is **bit-identical at any thread count** — the engine-wide determinism
//! guarantee extends to flows. Filtered flows count only matching workers
//! on *both* sides of the pair.

use crate::attr::{Attr, MarginalSpec};
use crate::cell::{CellKey, CellSchema};
use crate::index::TabulationIndex;
use crate::kernel::{establishment_keys, Kernel};
use lodes::{Dataset, Worker};
use serde::{get_field, DeError, Deserialize, Serialize, Value};
#[cfg(feature = "reference")]
use std::collections::BTreeMap;

/// Flow statistics for one cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Beginning-of-period employment `B`.
    pub beginning: u64,
    /// End-of-period employment `E`.
    pub ending: u64,
    /// Job creation `JC` (gross gains at growing establishments).
    pub job_creation: u64,
    /// Job destruction `JD` (gross losses at shrinking establishments).
    pub job_destruction: u64,
    /// Largest single-establishment contribution to `B` (the `x_v` of the
    /// beginning-employment query).
    pub max_beginning: u32,
    /// Largest single-establishment contribution to `E`.
    pub max_ending: u32,
    /// Largest single-establishment contribution to `JC` (the `x_v` of the
    /// creation query).
    pub max_creation: u32,
    /// Largest single-establishment contribution to `JD`.
    pub max_destruction: u32,
}

impl FlowStats {
    /// Net employment change `E − B = JC − JD`.
    pub fn net_change(&self) -> i64 {
        self.ending as i64 - self.beginning as i64
    }

    /// Fold one establishment's `(before, after)` pair into the cell.
    #[inline]
    fn absorb(&mut self, b: u32, e: u32) {
        self.beginning += b as u64;
        self.ending += e as u64;
        let creation = e.saturating_sub(b);
        let destruction = b.saturating_sub(e);
        self.job_creation += creation as u64;
        self.job_destruction += destruction as u64;
        self.max_beginning = self.max_beginning.max(b);
        self.max_ending = self.max_ending.max(e);
        self.max_creation = self.max_creation.max(creation);
        self.max_destruction = self.max_destruction.max(destruction);
    }
}

/// A materialized flow tabulation between two quarters.
///
/// Mirrors [`crate::Marginal`]: only active cells (nonzero `B` or `E`) are
/// stored, in a `Vec` strictly sorted by packed key — the shape the
/// sorted-run merge produces directly — with binary-search point lookups
/// and ordered iteration. The spec and schema ride along so persisted
/// flow truths are self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMarginal {
    spec: MarginalSpec,
    schema: CellSchema,
    /// Active cells, strictly ascending by key.
    cells: Vec<(CellKey, FlowStats)>,
}

impl FlowMarginal {
    /// Assemble from an already-sorted cell run (the merge output).
    ///
    /// # Panics
    /// Debug-asserts that keys are strictly ascending.
    pub(crate) fn from_sorted(
        spec: MarginalSpec,
        schema: CellSchema,
        cells: Vec<(CellKey, FlowStats)>,
    ) -> Self {
        debug_assert!(
            cells.windows(2).all(|w| w[0].0 < w[1].0),
            "flow cell run must be strictly sorted by key"
        );
        Self {
            spec,
            schema,
            cells,
        }
    }

    /// The query specification (workplace attributes only).
    pub fn spec(&self) -> &MarginalSpec {
        &self.spec
    }

    /// The key schema (shared with level marginals of the same spec).
    pub fn schema(&self) -> &CellSchema {
        &self.schema
    }

    /// Number of cells with any activity.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Stats for one cell; `None` when the cell is dead in both quarters.
    pub fn cell(&self, key: CellKey) -> Option<&FlowStats> {
        self.cells
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| &self.cells[i].1)
    }

    /// Iterate over active cells in key order.
    pub fn iter(&self) -> impl Iterator<Item = (CellKey, &FlowStats)> {
        self.cells.iter().map(|(k, v)| (*k, v))
    }

    /// Aggregate totals across all cells.
    pub fn totals(&self) -> FlowStats {
        let mut out = FlowStats::default();
        for (_, stats) in &self.cells {
            out.beginning += stats.beginning;
            out.ending += stats.ending;
            out.job_creation += stats.job_creation;
            out.job_destruction += stats.job_destruction;
            out.max_beginning = out.max_beginning.max(stats.max_beginning);
            out.max_ending = out.max_ending.max(stats.max_ending);
            out.max_creation = out.max_creation.max(stats.max_creation);
            out.max_destruction = out.max_destruction.max(stats.max_destruction);
        }
        out
    }

    /// A stable FNV-1a digest over every cell — key, the four flow
    /// statistics, and their per-statistic maxima — folded in key order,
    /// prefixed by the cell count. The flow analogue of
    /// [`crate::Marginal::content_digest`]: equal digests (with equal
    /// specs) mean bit-identical statistics, and the persistent truth
    /// store refuses loads that no longer reproduce it.
    pub fn content_digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(self.cells.len() as u64);
        for &(key, stats) in &self.cells {
            fold(key.0);
            fold(stats.beginning);
            fold(stats.ending);
            fold(stats.job_creation);
            fold(stats.job_destruction);
            fold((stats.max_beginning as u64) | ((stats.max_ending as u64) << 32));
            fold((stats.max_creation as u64) | ((stats.max_destruction as u64) << 32));
        }
        hash
    }
}

/// The stable serialized form: spec, schema, and the sorted cell run —
/// totals are derived, never trusted from a snapshot.
impl Serialize for FlowMarginal {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("spec".to_string(), self.spec.to_value()),
            ("schema".to_string(), self.schema.to_value()),
            ("cells".to_string(), self.cells.to_value()),
        ])
    }
}

impl Deserialize for FlowMarginal {
    /// Reconstruct from the serialized form, re-validating every invariant
    /// the flow evaluator guarantees by construction: workplace-only spec,
    /// strictly ascending in-domain keys, no dead cells, the accounting
    /// identity `E − B = JC − JD` per cell, and per-statistic maxima that
    /// are positive exactly when their statistic is and never exceed it.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let spec = MarginalSpec::from_value(get_field(v, "spec")?)?;
        let schema = CellSchema::from_value(get_field(v, "schema")?)?;
        let cells = Vec::<(CellKey, FlowStats)>::from_value(get_field(v, "cells")?)?;
        if spec.has_worker_attrs() {
            return Err(DeError::new(
                "flow marginal spec must not include worker attributes",
            ));
        }
        let spec_attrs: Vec<Attr> = spec.attrs().collect();
        if schema.attrs() != spec_attrs.as_slice() {
            return Err(DeError::new(
                "flow marginal schema attributes disagree with its spec",
            ));
        }
        if !cells.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(DeError::new(
                "flow marginal cells are not strictly sorted by key",
            ));
        }
        let domain = schema.domain_size();
        for &(key, s) in &cells {
            if key.0 >= domain {
                return Err(DeError::new(format!(
                    "flow cell key {} outside schema domain {domain}",
                    key.0
                )));
            }
            if s.beginning == 0 && s.ending == 0 {
                return Err(DeError::new("dead cell in flow marginal snapshot"));
            }
            let net = s.ending as i128 - s.beginning as i128;
            let gross = s.job_creation as i128 - s.job_destruction as i128;
            if net != gross {
                return Err(DeError::new(format!(
                    "flow cell {} violates E - B = JC - JD ({net} vs {gross})",
                    key.0
                )));
            }
            // Each maximum is one establishment's contribution to its
            // statistic: bounded by the statistic's total and positive
            // exactly when the total is.
            let pairs = [
                (s.max_beginning, s.beginning, "beginning"),
                (s.max_ending, s.ending, "ending"),
                (s.max_creation, s.job_creation, "creation"),
                (s.max_destruction, s.job_destruction, "destruction"),
            ];
            for (max, total, what) in pairs {
                if max as u64 > total || (max == 0) != (total == 0) {
                    return Err(DeError::new(format!(
                        "impossible {what} stats in flow cell {} (total {total}, max {max})",
                        key.0
                    )));
                }
            }
            // Creation is a sum of per-establishment gains, each bounded
            // by that establishment's after-size; destruction likewise by
            // the before-size.
            if s.job_creation > s.ending || s.job_destruction > s.beginning {
                return Err(DeError::new(format!(
                    "flow cell {} has gross flows exceeding employment",
                    key.0
                )));
            }
        }
        Ok(Self {
            spec,
            schema,
            cells,
        })
    }
}

impl TabulationIndex {
    /// Tabulate job flows from this index (quarter `t`) to `after`
    /// (quarter `t+1`), single-threaded. See [`compute_flows`] for the
    /// semantics and panics.
    pub fn flows(&self, after: &TabulationIndex, spec: &MarginalSpec) -> FlowMarginal {
        self.flows_sharded(after, spec, 1)
    }

    /// Tabulate job flows with a sharded establishment loop. The result is
    /// bit-identical at any thread count.
    pub fn flows_sharded(
        &self,
        after: &TabulationIndex,
        spec: &MarginalSpec,
        threads: usize,
    ) -> FlowMarginal {
        tabulate_flows(self, after, spec, None, threads, Kernel::Auto)
    }

    /// [`flows_sharded`](Self::flows_sharded) with an explicit [`Kernel`]
    /// choice. `Kernel::Scalar` forces the scalar establishment-key
    /// kernel; the result is bit-identical to `Kernel::Auto` by
    /// construction.
    pub fn flows_sharded_with_kernel(
        &self,
        after: &TabulationIndex,
        spec: &MarginalSpec,
        threads: usize,
        kernel: Kernel,
    ) -> FlowMarginal {
        tabulate_flows(self, after, spec, None, threads, kernel)
    }

    /// Tabulate job flows over only the workers matching `filter` — on
    /// both sides of the pair — with a sharded establishment loop.
    pub fn flows_filtered_sharded<F>(
        &self,
        after: &TabulationIndex,
        spec: &MarginalSpec,
        filter: F,
        threads: usize,
    ) -> FlowMarginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        tabulate_flows(self, after, spec, Some(&filter), threads, Kernel::Auto)
    }

    /// [`flows_filtered_sharded`](Self::flows_filtered_sharded) with an
    /// explicit [`Kernel`] choice.
    pub fn flows_filtered_sharded_with_kernel<F>(
        &self,
        after: &TabulationIndex,
        spec: &MarginalSpec,
        filter: F,
        threads: usize,
        kernel: Kernel,
    ) -> FlowMarginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        tabulate_flows(self, after, spec, Some(&filter), threads, kernel)
    }

    /// Tabulate job flows over only the records matching the declarative
    /// filter `expr`, compiled against each quarter's index separately
    /// (the worker-domain truth tables agree; workplace leaves resolve
    /// against each quarter's own establishment column).
    pub fn flows_expr_sharded(
        &self,
        after: &TabulationIndex,
        spec: &MarginalSpec,
        expr: &crate::filter::FilterExpr,
        threads: usize,
    ) -> FlowMarginal {
        let before_filter = expr.compile(self);
        let after_filter = expr.compile(after);
        tabulate_flows_split(
            self,
            after,
            spec,
            Some((&|w| before_filter.matches(w), &|w| after_filter.matches(w))),
            threads,
            Kernel::Auto,
        )
    }
}

/// Evaluate the flow query `(B, E, JC, JD)` between two snapshots grouped
/// by the workplace attributes of `spec`.
///
/// Convenience wrapper: builds two throwaway [`TabulationIndex`]es and
/// runs the indexed evaluator single-threaded. Callers tabulating a pair
/// more than once should build (or share) the indexes themselves.
///
/// # Panics
/// Panics if the spec has worker attributes (flows are establishment-level
/// quantities), or if the two snapshots do not share an establishment
/// frame (same workplace count; the panel generator guarantees identical
/// frames).
pub fn compute_flows(before: &Dataset, after: &Dataset, spec: &MarginalSpec) -> FlowMarginal {
    TabulationIndex::build(before).flows(&TabulationIndex::build(after), spec)
}

/// One filter applied to both sides of the pair.
type PairFilter<'a> = (
    &'a (dyn Fn(&Worker) -> bool + Sync),
    &'a (dyn Fn(&Worker) -> bool + Sync),
);

fn tabulate_flows(
    before: &TabulationIndex,
    after: &TabulationIndex,
    spec: &MarginalSpec,
    filter: Option<&(dyn Fn(&Worker) -> bool + Sync)>,
    threads: usize,
    kernel: Kernel,
) -> FlowMarginal {
    tabulate_flows_split(before, after, spec, filter.map(|f| (f, f)), threads, kernel)
}

/// Per-shard flow tabulation state, borrowed immutably by every worker
/// thread. Also built by [`crate::region`] to tabulate each region shard
/// of a sharded flow pair through the same code path.
pub(crate) struct FlowPlan<'a> {
    before: &'a TabulationIndex,
    after: &'a TabulationIndex,
    /// Workplace code columns of the spec's workplace attributes, from the
    /// before-quarter (both quarters share the establishment frame).
    wp_cols: Vec<&'a [u32]>,
    wp_strides: Vec<u64>,
    filters: Option<PairFilter<'a>>,
    kernel: Kernel,
}

impl<'a> FlowPlan<'a> {
    pub(crate) fn new(
        before: &'a TabulationIndex,
        after: &'a TabulationIndex,
        spec: &MarginalSpec,
        schema: &CellSchema,
        filters: Option<PairFilter<'a>>,
        kernel: Kernel,
    ) -> Self {
        assert!(
            !spec.has_worker_attrs(),
            "job flows are establishment-level: spec must not include worker attributes"
        );
        assert_eq!(
            before.num_establishments(),
            after.num_establishments(),
            "flow tabulation requires a shared establishment frame"
        );
        let wp_cols: Vec<&[u32]> = spec
            .workplace_attrs
            .iter()
            .map(|&a| before.workplace_column(a))
            .collect();
        let wp_strides: Vec<u64> = (0..wp_cols.len()).map(|i| schema.stride_of(i)).collect();
        Self {
            before,
            after,
            wp_cols,
            wp_strides,
            filters,
            kernel,
        }
    }
}

/// Establishments per precomputed key block (128 KiB of `u64` keys).
const ESTAB_BLOCK: usize = 1 << 14;

/// Tabulate establishments `lo..hi` of a flow pair into a run of
/// `(key, before, after)` contributions sorted by key. Establishment keys
/// are precomputed blockwise by the [`crate::kernel`] establishment-key
/// kernel; the per-establishment sizes come straight off each quarter's
/// CSR offsets (or a filtered scan), unchanged for every kernel choice.
pub(crate) fn flow_shard(plan: &FlowPlan<'_>, lo: usize, hi: usize) -> Vec<(u64, u32, u32)> {
    let mut run: Vec<(u64, u32, u32)> = Vec::new();
    let mut max_key: u64 = 0;
    let mut keys: Vec<u64> = Vec::new();
    let mut batch_lo = lo;
    while batch_lo < hi {
        let batch_hi = (batch_lo + ESTAB_BLOCK).min(hi);
        keys.resize(batch_hi - batch_lo, 0);
        establishment_keys(
            &plan.wp_cols,
            &plan.wp_strides,
            batch_lo,
            &mut keys,
            plan.kernel,
        );
        for e in batch_lo..batch_hi {
            let b = side_count(plan.before, e, plan.filters.map(|(f, _)| f));
            let a = side_count(plan.after, e, plan.filters.map(|(_, f)| f));
            if b == 0 && a == 0 {
                continue;
            }
            let key = keys[e - batch_lo];
            max_key = max_key.max(key);
            run.push((key, b, a));
        }
        batch_lo = batch_hi;
    }
    // Equal keys (same cell, different establishments) may interleave
    // arbitrarily; the merge's aggregates are all commutative.
    crate::engine::sort_run_by_key(&mut run, max_key, |&(key, _, _)| key);
    run
}

/// The indexed flow evaluator: shard the shared establishment frame,
/// tabulate sorted runs of per-establishment `(key, before, after)`
/// contributions, k-way merge into [`FlowStats`].
fn tabulate_flows_split(
    before: &TabulationIndex,
    after: &TabulationIndex,
    spec: &MarginalSpec,
    filters: Option<PairFilter<'_>>,
    threads: usize,
    kernel: Kernel,
) -> FlowMarginal {
    let schema = before.schema(spec);
    let n_estabs = before.num_establishments();
    let plan = FlowPlan::new(before, after, spec, &schema, filters, kernel);
    let threads = threads.max(1).min(n_estabs.max(1));
    let runs: Vec<Vec<(u64, u32, u32)>> = if threads <= 1 {
        vec![flow_shard(&plan, 0, n_estabs)]
    } else {
        // Shard boundaries balanced by the before-quarter's cumulative
        // worker count (see `TabulationIndex::shard_bounds`); the merge,
        // not the chunking, carries the determinism guarantee.
        let bounds = before.shard_bounds(threads);
        std::thread::scope(|scope| {
            let plan = &plan;
            let handles: Vec<_> = bounds
                .windows(2)
                .map(|w| {
                    let (lo, hi) = (w[0], w[1]);
                    scope.spawn(move || flow_shard(plan, lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flow tabulation shard panicked"))
                .collect()
        })
    };
    FlowMarginal::from_sorted(spec.clone(), schema, merge_flow_runs(runs))
}

/// One quarter's (possibly filtered) employment of establishment `e`.
#[inline]
fn side_count(
    index: &TabulationIndex,
    e: usize,
    filter: Option<&(dyn Fn(&Worker) -> bool + Sync)>,
) -> u32 {
    let range = index.worker_range(e);
    match filter {
        None => range.len() as u32,
        Some(f) => index.workers()[range].iter().filter(|w| f(w)).count() as u32,
    }
}

/// Deterministic k-way merge of per-shard sorted runs: every
/// `(cell, establishment)` contribution with the same key folds into one
/// [`FlowStats`] via commutative sums and maxima.
pub(crate) fn merge_flow_runs(runs: Vec<Vec<(u64, u32, u32)>>) -> Vec<(CellKey, FlowStats)> {
    let mut pos = vec![0usize; runs.len()];
    let mut out: Vec<(CellKey, FlowStats)> =
        Vec::with_capacity(runs.iter().map(Vec::len).max().unwrap_or(0));
    loop {
        let mut min_key: Option<u64> = None;
        for (run, &p) in runs.iter().zip(&pos) {
            if let Some(&(key, _, _)) = run.get(p) {
                min_key = Some(min_key.map_or(key, |m: u64| m.min(key)));
            }
        }
        let Some(key) = min_key else { break };
        let mut stats = FlowStats::default();
        for (run, p) in runs.iter().zip(&mut pos) {
            while let Some(&(k, b, e)) = run.get(*p) {
                if k != key {
                    break;
                }
                stats.absorb(b, e);
                *p += 1;
            }
        }
        out.push((CellKey(key), stats));
    }
    out
}

/// The pre-index flow evaluator: one pass over the workplace table using
/// `Dataset::establishment_size` on each side. Retained as the brute-force
/// *reference* for property tests and the old-vs-new benchmark; only
/// compiled under the default-off `reference` feature.
#[cfg(feature = "reference")]
pub fn compute_flows_legacy(
    before: &Dataset,
    after: &Dataset,
    spec: &MarginalSpec,
) -> FlowMarginal {
    assert!(
        !spec.has_worker_attrs(),
        "job flows are establishment-level: spec must not include worker attributes"
    );
    assert_eq!(
        before.num_workplaces(),
        after.num_workplaces(),
        "flow tabulation requires a shared establishment frame"
    );
    let schema = CellSchema::new(spec, before);
    let mut cells: BTreeMap<CellKey, FlowStats> = BTreeMap::new();
    let mut values: Vec<u32> = Vec::with_capacity(schema.attrs().len());
    for wp in before.workplaces() {
        let b = before.establishment_size(wp.id);
        let e = after.establishment_size(wp.id);
        if b == 0 && e == 0 {
            continue;
        }
        values.clear();
        for attr in &spec.workplace_attrs {
            values.push(attr.value(wp));
        }
        let key = schema.encode(&values);
        cells.entry(key).or_default().absorb(b, e);
    }
    FlowMarginal::from_sorted(spec.clone(), schema, cells.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{MarginalSpec, WorkerAttr, WorkplaceAttr};
    use lodes::{DatasetPanel, GeneratorConfig, PanelConfig};

    fn panel() -> DatasetPanel {
        DatasetPanel::generate(
            &GeneratorConfig::test_small(91),
            &PanelConfig {
                quarters: 2,
                growth_sigma: 0.1,
                death_rate: 0.05,
                seed: 19,
            },
        )
    }

    #[test]
    fn accounting_identity_holds_per_cell_and_overall() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
        assert!(flows.num_cells() > 0);
        for (key, stats) in flows.iter() {
            assert_eq!(
                stats.net_change(),
                stats.job_creation as i64 - stats.job_destruction as i64,
                "E - B = JC - JD must hold for cell {key:?}"
            );
            assert!(stats.max_creation as u64 <= stats.job_creation.max(1));
            assert!(stats.max_destruction as u64 <= stats.job_destruction.max(1));
            assert!(stats.max_beginning as u64 <= stats.beginning);
            assert!(stats.max_ending as u64 <= stats.ending);
        }
        let totals = flows.totals();
        assert_eq!(totals.beginning as usize, p.quarter(0).num_jobs());
        assert_eq!(totals.ending as usize, p.quarter(1).num_jobs());
        // With 5% deaths there must be real destruction.
        assert!(totals.job_destruction > 0);
        assert!(totals.job_creation > 0);
    }

    #[test]
    fn flows_are_zero_between_identical_quarters() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]);
        let flows = compute_flows(p.quarter(0), p.quarter(0), &spec);
        for (_, stats) in flows.iter() {
            assert_eq!(stats.job_creation, 0);
            assert_eq!(stats.job_destruction, 0);
            assert_eq!(stats.beginning, stats.ending);
            assert_eq!(stats.max_beginning, stats.max_ending);
        }
    }

    #[test]
    #[should_panic(expected = "must not include worker attributes")]
    fn rejects_worker_attributes() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![WorkerAttr::Sex]);
        compute_flows(p.quarter(0), p.quarter(1), &spec);
    }

    #[test]
    fn flow_keys_align_with_level_marginal_keys() {
        use crate::engine::compute_marginal;
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics, WorkplaceAttr::Ownership], vec![]);
        let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
        let levels = compute_marginal(p.quarter(0), &spec);
        for (key, stats) in flows.iter() {
            if stats.beginning > 0 {
                let level = levels.cell(key).expect("beginning > 0 implies level cell");
                assert_eq!(level.count, stats.beginning, "keys must align");
                assert_eq!(
                    level.max_establishment, stats.max_beginning,
                    "B's x_v is the level marginal's x_v"
                );
            }
        }
    }

    #[test]
    fn sharded_flows_are_bit_identical_at_any_thread_count() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Place, WorkplaceAttr::Naics], vec![]);
        let before = TabulationIndex::build(p.quarter(0));
        let after = TabulationIndex::build(p.quarter(1));
        let reference = before.flows_sharded(&after, &spec, 1);
        for threads in [2, 3, 7, 64] {
            let sharded = before.flows_sharded(&after, &spec, threads);
            assert_eq!(sharded, reference);
            assert_eq!(sharded.content_digest(), reference.content_digest());
        }
    }

    /// The kernel dispatch choice never changes a flow cell: scalar and
    /// Auto (AVX2 on CI hardware) agree bit-for-bit.
    #[test]
    fn simd_and_scalar_flow_kernels_are_bit_identical() {
        use crate::kernel::Kernel;
        let p = panel();
        let before = TabulationIndex::build(p.quarter(0));
        let after = TabulationIndex::build(p.quarter(1));
        let specs = [
            MarginalSpec::new(vec![], vec![]),
            MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]),
            MarginalSpec::new(
                vec![
                    WorkplaceAttr::Block,
                    WorkplaceAttr::Naics,
                    WorkplaceAttr::Ownership,
                ],
                vec![],
            ),
        ];
        for spec in &specs {
            for threads in [1, 3] {
                let scalar =
                    before.flows_sharded_with_kernel(&after, spec, threads, Kernel::Scalar);
                let auto = before.flows_sharded_with_kernel(&after, spec, threads, Kernel::Auto);
                assert_eq!(auto, scalar);
                assert_eq!(auto.content_digest(), scalar.content_digest());
                let scalar_f = before.flows_filtered_sharded_with_kernel(
                    &after,
                    spec,
                    |w| w.sex == lodes::Sex::Female,
                    threads,
                    Kernel::Scalar,
                );
                let auto_f = before.flows_filtered_sharded_with_kernel(
                    &after,
                    spec,
                    |w| w.sex == lodes::Sex::Female,
                    threads,
                    Kernel::Auto,
                );
                assert_eq!(auto_f, scalar_f);
            }
        }
    }

    #[test]
    fn filtered_flows_count_matching_workers_on_both_sides() {
        use lodes::Sex;
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::County], vec![]);
        let before = TabulationIndex::build(p.quarter(0));
        let after = TabulationIndex::build(p.quarter(1));
        let all = before.flows_sharded(&after, &spec, 2);
        let female = before.flows_filtered_sharded(&after, &spec, |w| w.sex == Sex::Female, 2);
        let male = before.flows_filtered_sharded(&after, &spec, |w| w.sex == Sex::Male, 2);
        assert_eq!(
            female.totals().beginning + male.totals().beginning,
            all.totals().beginning
        );
        assert_eq!(
            female.totals().ending + male.totals().ending,
            all.totals().ending
        );
        // The declarative-filter path agrees with the closure path.
        let expr = crate::filter::FilterExpr::sex(Sex::Female);
        let via_expr = before.flows_expr_sharded(&after, &spec, &expr, 3);
        assert_eq!(via_expr, female);
    }

    #[test]
    fn serde_round_trip_is_bit_identical() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics, WorkplaceAttr::Ownership], vec![]);
        let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
        let json = serde_json::to_string(&flows).unwrap();
        let back: FlowMarginal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, flows);
        assert_eq!(back.content_digest(), flows.content_digest());
    }

    #[test]
    fn deserialization_refuses_invalid_snapshots() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
        let json = serde_json::to_string(&flows).unwrap();
        let (key, stats) = flows.iter().next().expect("nonempty flows");
        // Breaking the accounting identity is refused.
        let tampered = json.replacen(
            &format!("\"job_creation\":{}", stats.job_creation),
            &format!("\"job_creation\":{}", stats.job_creation + 1),
            1,
        );
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<FlowMarginal>(&tampered).is_err());
        // An out-of-domain key is refused.
        let domain = flows.schema().domain_size();
        let tampered = json.replacen(&format!("[{}", key.0), &format!("[{domain}"), 1);
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<FlowMarginal>(&tampered).is_err());
        // An impossible maximum (x_v above its statistic) is refused.
        let tampered = json.replacen(
            &format!("\"max_beginning\":{}", stats.max_beginning),
            &format!("\"max_beginning\":{}", stats.beginning + 1),
            1,
        );
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<FlowMarginal>(&tampered).is_err());
    }

    #[cfg(feature = "reference")]
    #[test]
    fn indexed_flows_match_legacy_flows() {
        let p = panel();
        let specs = [
            MarginalSpec::new(vec![], vec![]),
            MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]),
            MarginalSpec::new(
                vec![
                    WorkplaceAttr::Place,
                    WorkplaceAttr::Naics,
                    WorkplaceAttr::Ownership,
                ],
                vec![],
            ),
        ];
        for spec in &specs {
            let legacy = compute_flows_legacy(p.quarter(0), p.quarter(1), spec);
            let indexed = compute_flows(p.quarter(0), p.quarter(1), spec);
            assert_eq!(indexed, legacy);
            assert_eq!(indexed.content_digest(), legacy.content_digest());
        }
    }
}
