//! QWI-style job-flow statistics over consecutive quarters.
//!
//! The paper's opening motivation: ER-EE publications "are used to compute
//! national and local economic indicators, including job creation and
//! destruction statistics" — the Quarterly Workforce Indicators. Given two
//! snapshots of the same establishment frame, per cell `v`:
//!
//! * **beginning employment** `B(v)` — jobs in quarter `t`;
//! * **ending employment** `E(v)` — jobs in quarter `t+1`;
//! * **job creation** `JC(v) = Σ_w max(0, n_{t+1,w} − n_{t,w})` over the
//!   cell's establishments;
//! * **job destruction** `JD(v) = Σ_w max(0, n_{t,w} − n_{t+1,w})`;
//! * **net change** `E − B = JC − JD` (an identity, checked in tests).
//!
//! For private release, each flow carries its own `x_v` analogue: the
//! largest single-establishment contribution to that flow. A strong
//! α-neighbor step perturbs one establishment's employment by at most an
//! α-fraction per quarter, so flow queries plug into the same
//! smooth-sensitivity machinery as level queries (the per-establishment
//! flow contribution is itself bounded by the size change).

use crate::attr::MarginalSpec;
use crate::cell::{CellKey, CellSchema};
use lodes::Dataset;
use std::collections::BTreeMap;

/// Flow statistics for one cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Beginning-of-period employment `B`.
    pub beginning: u64,
    /// End-of-period employment `E`.
    pub ending: u64,
    /// Job creation `JC` (gross gains at growing establishments).
    pub job_creation: u64,
    /// Job destruction `JD` (gross losses at shrinking establishments).
    pub job_destruction: u64,
    /// Largest single-establishment contribution to `JC` (the `x_v` of the
    /// creation query).
    pub max_creation: u32,
    /// Largest single-establishment contribution to `JD`.
    pub max_destruction: u32,
}

impl FlowStats {
    /// Net employment change `E − B = JC − JD`.
    pub fn net_change(&self) -> i64 {
        self.ending as i64 - self.beginning as i64
    }
}

/// A materialized flow tabulation between two quarters.
#[derive(Debug, Clone)]
pub struct FlowMarginal {
    schema: CellSchema,
    cells: BTreeMap<CellKey, FlowStats>,
}

impl FlowMarginal {
    /// The key schema (shared with level marginals of the same spec).
    pub fn schema(&self) -> &CellSchema {
        &self.schema
    }

    /// Number of cells with any activity.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Stats for one cell.
    pub fn cell(&self, key: CellKey) -> Option<&FlowStats> {
        self.cells.get(&key)
    }

    /// Iterate over active cells in key order.
    pub fn iter(&self) -> impl Iterator<Item = (CellKey, &FlowStats)> {
        self.cells.iter().map(|(&k, v)| (k, v))
    }

    /// Aggregate totals across all cells.
    pub fn totals(&self) -> FlowStats {
        let mut out = FlowStats::default();
        for stats in self.cells.values() {
            out.beginning += stats.beginning;
            out.ending += stats.ending;
            out.job_creation += stats.job_creation;
            out.job_destruction += stats.job_destruction;
            out.max_creation = out.max_creation.max(stats.max_creation);
            out.max_destruction = out.max_destruction.max(stats.max_destruction);
        }
        out
    }
}

/// Tabulate job flows between `before` and `after` grouped by the
/// workplace attributes of `spec`.
///
/// # Panics
/// Panics if the spec has worker attributes (flows are establishment-level
/// quantities), or if the two snapshots do not share an establishment
/// frame (same workplace count; the panel generator guarantees identical
/// frames).
pub fn compute_flows(before: &Dataset, after: &Dataset, spec: &MarginalSpec) -> FlowMarginal {
    assert!(
        !spec.has_worker_attrs(),
        "job flows are establishment-level: spec must not include worker attributes"
    );
    assert_eq!(
        before.num_workplaces(),
        after.num_workplaces(),
        "flow tabulation requires a shared establishment frame"
    );
    let schema = CellSchema::new(spec, before);
    let mut cells: BTreeMap<CellKey, FlowStats> = BTreeMap::new();
    let mut values: Vec<u32> = Vec::with_capacity(schema.attrs().len());
    for wp in before.workplaces() {
        let b = before.establishment_size(wp.id) as u64;
        let e = after.establishment_size(wp.id) as u64;
        if b == 0 && e == 0 {
            continue;
        }
        values.clear();
        for attr in &spec.workplace_attrs {
            values.push(attr.value(wp));
        }
        let key = schema.encode(&values);
        let entry = cells.entry(key).or_default();
        entry.beginning += b;
        entry.ending += e;
        let creation = e.saturating_sub(b);
        let destruction = b.saturating_sub(e);
        entry.job_creation += creation;
        entry.job_destruction += destruction;
        entry.max_creation = entry.max_creation.max(creation as u32);
        entry.max_destruction = entry.max_destruction.max(destruction as u32);
    }
    FlowMarginal { schema, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{MarginalSpec, WorkerAttr, WorkplaceAttr};
    use lodes::{DatasetPanel, GeneratorConfig, PanelConfig};

    fn panel() -> DatasetPanel {
        DatasetPanel::generate(
            &GeneratorConfig::test_small(91),
            &PanelConfig {
                quarters: 2,
                growth_sigma: 0.1,
                death_rate: 0.05,
                seed: 19,
            },
        )
    }

    #[test]
    fn accounting_identity_holds_per_cell_and_overall() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
        assert!(flows.num_cells() > 0);
        for (key, stats) in flows.iter() {
            assert_eq!(
                stats.net_change(),
                stats.job_creation as i64 - stats.job_destruction as i64,
                "E - B = JC - JD must hold for cell {key:?}"
            );
            assert!(stats.max_creation as u64 <= stats.job_creation.max(1));
            assert!(stats.max_destruction as u64 <= stats.job_destruction.max(1));
        }
        let totals = flows.totals();
        assert_eq!(totals.beginning as usize, p.quarter(0).num_jobs());
        assert_eq!(totals.ending as usize, p.quarter(1).num_jobs());
        // With 5% deaths there must be real destruction.
        assert!(totals.job_destruction > 0);
        assert!(totals.job_creation > 0);
    }

    #[test]
    fn flows_are_zero_between_identical_quarters() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]);
        let flows = compute_flows(p.quarter(0), p.quarter(0), &spec);
        for (_, stats) in flows.iter() {
            assert_eq!(stats.job_creation, 0);
            assert_eq!(stats.job_destruction, 0);
            assert_eq!(stats.beginning, stats.ending);
        }
    }

    #[test]
    #[should_panic(expected = "must not include worker attributes")]
    fn rejects_worker_attributes() {
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![WorkerAttr::Sex]);
        compute_flows(p.quarter(0), p.quarter(1), &spec);
    }

    #[test]
    fn flow_keys_align_with_level_marginal_keys() {
        use crate::engine::compute_marginal;
        let p = panel();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics, WorkplaceAttr::Ownership], vec![]);
        let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
        let levels = compute_marginal(p.quarter(0), &spec);
        for (key, stats) in flows.iter() {
            if stats.beginning > 0 {
                let level = levels.cell(key).expect("beginning > 0 implies level cell");
                assert_eq!(level.count, stats.beginning, "keys must align");
            }
        }
    }
}
