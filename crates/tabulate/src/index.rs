//! Columnar, employer-grouped tabulation index.
//!
//! The paper's workloads tabulate the same confidential snapshot many
//! times under different marginal specs; a production release service does
//! so thousands of times per publication season. [`TabulationIndex`]
//! amortizes everything that is spec-independent into one build per
//! [`Dataset`]:
//!
//! * a **CSR grouping** of workers by employing establishment —
//!   `offsets[e]..offsets[e + 1]` is establishment `e`'s contiguous worker
//!   range — so per-establishment statistics (`x_v`, contributing-
//!   establishment counts) fall out of a sequential scan instead of a
//!   global `(cell, establishment)` hash map;
//! * **pre-extracted attribute code columns**: worker attributes as dense
//!   `u8` codes in CSR order, workplace attributes as dense `u32` codes
//!   per establishment — tabulation reads only the columns a spec names;
//! * the worker records themselves in CSR order, for filtered workloads
//!   (the filter API takes `&Worker`);
//! * a snapshot of the dataset's workplace-attribute cardinalities, so a
//!   [`CellSchema`] can be derived for any spec without re-touching the
//!   dataset.
//!
//! The marginal evaluation built on top of this lives in
//! [`crate::engine`]; see that module for the sorted-run algorithm and its
//! determinism guarantee.

use crate::attr::{Attr, MarginalSpec, WorkerAttr, WorkplaceAttr};
use crate::cell::CellSchema;
use lodes::{Dataset, Geography, Worker, WorkerId, Workplace};
use std::sync::Arc;

/// All workplace attributes, in the order their columns are stored.
const WORKPLACE_ATTRS: [WorkplaceAttr; 6] = [
    WorkplaceAttr::State,
    WorkplaceAttr::County,
    WorkplaceAttr::Place,
    WorkplaceAttr::Block,
    WorkplaceAttr::Naics,
    WorkplaceAttr::Ownership,
];

/// All worker attributes, in the order their columns are stored.
const WORKER_ATTRS: [WorkerAttr; 5] = [
    WorkerAttr::Sex,
    WorkerAttr::Age,
    WorkerAttr::Race,
    WorkerAttr::Ethnicity,
    WorkerAttr::Education,
];

fn workplace_slot(attr: WorkplaceAttr) -> usize {
    match attr {
        WorkplaceAttr::State => 0,
        WorkplaceAttr::County => 1,
        WorkplaceAttr::Place => 2,
        WorkplaceAttr::Block => 3,
        WorkplaceAttr::Naics => 4,
        WorkplaceAttr::Ownership => 5,
    }
}

fn worker_slot(attr: WorkerAttr) -> usize {
    match attr {
        WorkerAttr::Sex => 0,
        WorkerAttr::Age => 1,
        WorkerAttr::Race => 2,
        WorkerAttr::Ethnicity => 3,
        WorkerAttr::Education => 4,
    }
}

/// Columnar employer-grouped (CSR) layout of one [`Dataset`], built once
/// and shared across every tabulation of that dataset.
///
/// Self-contained: after `build`, tabulation never touches the `Dataset`
/// again, so an index can be handed to worker threads or cached next to
/// the truth marginals it produced without borrowing the database.
#[derive(Debug, Clone)]
pub struct TabulationIndex {
    /// CSR offsets: establishment `e`'s workers occupy
    /// `offsets[e] as usize .. offsets[e + 1] as usize` in the
    /// employer-grouped worker columns.
    offsets: Vec<u32>,
    /// Worker records in employer-grouped order (filter evaluation).
    workers: Vec<Worker>,
    /// Worker attribute code columns in employer-grouped order, indexed by
    /// `worker_slot` (sex, age, race, ethnicity, education). Every worker
    /// domain has ≤ 8 categories, so `u8` codes are exact.
    worker_codes: [Vec<u8>; 5],
    /// Workplace attribute code columns, one entry per establishment,
    /// indexed by `workplace_slot` (state, county, place, block, naics,
    /// ownership).
    workplace_codes: [Vec<u32>; 6],
    /// Workplace-attribute domain cardinalities of the source dataset,
    /// indexed by `workplace_slot`.
    workplace_cards: [u64; 6],
    /// Employing establishment per **dense worker id** (the inverse of
    /// the CSR grouping). Filter compilation needs it to resolve
    /// workplace predicates from a bare `&Worker`; it is
    /// filter-independent, so it is built once here and shared (`Arc`)
    /// with every [`crate::filter::CompiledFilter`].
    employer_of_worker: Arc<Vec<u32>>,
}

impl TabulationIndex {
    /// Build the index: one counting sort over the Job table plus one
    /// column-extraction pass per attribute. `O(workers + establishments)`
    /// — cheap next to a single tabulation, and amortized across all of
    /// them.
    pub fn build(dataset: &Dataset) -> Self {
        let (offsets, order) = dataset.workers_by_employer();
        let workers: Vec<Worker> = order
            .iter()
            .map(|&w| *dataset.worker(lodes::WorkerId(w)))
            .collect();
        let worker_codes = WORKER_ATTRS.map(|attr| {
            workers
                .iter()
                .map(|w| {
                    let code = attr.value(w);
                    debug_assert!(code < 256, "worker attribute code exceeds u8");
                    code as u8
                })
                .collect()
        });
        let workplace_codes = WORKPLACE_ATTRS.map(|attr| {
            dataset
                .workplaces()
                .iter()
                .map(|wp| attr.value(wp))
                .collect()
        });
        let workplace_cards = WORKPLACE_ATTRS.map(|attr| attr.cardinality(dataset) as u64);
        let mut employer_of_worker = vec![0u32; workers.len()];
        for e in 0..offsets.len() - 1 {
            for i in offsets[e] as usize..offsets[e + 1] as usize {
                employer_of_worker[workers[i].id.0 as usize] = e as u32;
            }
        }
        Self {
            offsets,
            workers,
            worker_codes,
            workplace_codes,
            workplace_cards,
            employer_of_worker: Arc::new(employer_of_worker),
        }
    }

    /// Number of establishments indexed.
    pub fn num_establishments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of workers indexed.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Establishment `e`'s worker range in the employer-grouped columns.
    #[inline]
    pub(crate) fn worker_range(&self, e: usize) -> std::ops::Range<usize> {
        self.offsets[e] as usize..self.offsets[e + 1] as usize
    }

    /// Worker records in employer-grouped order.
    #[inline]
    pub(crate) fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// The `u8` code column of one worker attribute (employer-grouped
    /// order).
    #[inline]
    pub(crate) fn worker_column(&self, attr: WorkerAttr) -> &[u8] {
        &self.worker_codes[worker_slot(attr)]
    }

    /// The `u32` code column of one workplace attribute (one entry per
    /// establishment).
    #[inline]
    pub(crate) fn workplace_column(&self, attr: WorkplaceAttr) -> &[u32] {
        &self.workplace_codes[workplace_slot(attr)]
    }

    /// Shared employing-establishment column, indexed by dense worker id.
    #[inline]
    pub(crate) fn employer_of_worker(&self) -> &Arc<Vec<u32>> {
        &self.employer_of_worker
    }

    /// Establishment shard boundaries balanced by **cumulative worker
    /// count**: `shards + 1` monotone establishment indexes whose windows
    /// partition `0..num_establishments()` so that every shard scans
    /// roughly `num_workers() / shards` workers.
    ///
    /// Contiguous establishment-count chunking (the obvious split) hands a
    /// shard of tiny establishments and a shard of giant ones the same
    /// establishment count but wildly different worker counts — on skewed
    /// (power-law) universes the slowest shard dominates wall clock. The
    /// tabulation cost of a shard is linear in the workers it scans, so
    /// balancing on the CSR offsets balances the actual work. A boundary
    /// never splits an establishment (shards stay establishment-aligned,
    /// which the per-establishment evaluator requires), so one
    /// establishment larger than the ideal shard yields empty neighbors —
    /// harmless to the merge.
    ///
    /// The boundaries are a pure function of the index and `shards`;
    /// sharded tabulation stays bit-identical at any shard count because
    /// the k-way merge is order-insensitive, not because the boundaries
    /// are fixed.
    pub fn shard_bounds(&self, shards: usize) -> Vec<usize> {
        let n = self.num_establishments();
        let shards = shards.max(1).min(n.max(1));
        let total = *self.offsets.last().expect("offsets never empty") as u64;
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0usize);
        for t in 1..shards {
            let target = total * t as u64 / shards as u64;
            // First establishment starting at or beyond the target worker
            // count, clamped monotone so windows never run backwards.
            let b = self
                .offsets
                .partition_point(|&o| (o as u64) < target)
                .min(n)
                .max(*bounds.last().expect("nonempty"));
            bounds.push(b);
        }
        bounds.push(n);
        bounds
    }

    /// The key schema `spec` induces over the indexed dataset — identical
    /// to `CellSchema::new(spec, dataset)` on the source dataset.
    pub fn schema(&self, spec: &MarginalSpec) -> CellSchema {
        schema_from_cards(&self.workplace_cards, spec)
    }
}

/// Workplace-attribute domain cardinalities of a geography, in column-slot
/// order — what [`WorkplaceAttr::cardinality`] reports for any dataset
/// over that geography.
pub(crate) fn cards_from_geography(geography: &Geography) -> [u64; 6] {
    [
        geography.num_states() as u64,
        geography.num_counties() as u64,
        geography.num_places() as u64,
        geography.num_blocks() as u64,
        lodes::NaicsSector::COUNT as u64,
        lodes::Ownership::COUNT as u64,
    ]
}

/// Derive the [`CellSchema`] for `spec` from snapshotted workplace
/// cardinalities (worker domains are fixed enums).
pub(crate) fn schema_from_cards(cards: &[u64; 6], spec: &MarginalSpec) -> CellSchema {
    let attrs: Vec<Attr> = spec.attrs().collect();
    let cardinalities: Vec<u64> = attrs
        .iter()
        .map(|a| match a {
            Attr::Workplace(w) => cards[workplace_slot(*w)],
            Attr::Worker(w) => w.cardinality() as u64,
        })
        .collect();
    CellSchema::from_parts(attrs, cardinalities)
}

/// Streaming [`TabulationIndex`] construction, one establishment at a
/// time, without ever materializing a [`Dataset`].
///
/// The generator emits workers already grouped by employing establishment,
/// which is exactly the CSR layout the index stores — so a national-scale
/// index can be built from a generation *stream* with peak memory bounded
/// by the index itself (no second copy as a `Dataset`, no counting-sort
/// scratch). [`crate::RegionIndexBuilder`] routes the same stream into
/// per-state shards.
///
/// Worker identifiers are **rebased**: each pushed worker is assigned the
/// next dense id in arrival (CSR) order, so the finished index is
/// self-contained — filter compilation resolves `employer_of_worker` by
/// those local ids. Closure filters that inspect `Worker::id` therefore
/// see builder-local ids, not the caller's; the declarative
/// [`crate::FilterExpr`] path is unaffected (it reads only attributes).
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    offsets: Vec<u32>,
    workers: Vec<Worker>,
    worker_codes: [Vec<u8>; 5],
    workplace_codes: [Vec<u32>; 6],
    workplace_cards: [u64; 6],
}

impl IndexBuilder {
    /// Start an empty index over `geography` (the cardinality snapshot
    /// must come from the universe, not from the — possibly partial —
    /// stream).
    pub fn new(geography: &Geography) -> Self {
        Self::with_cards(cards_from_geography(geography))
    }

    pub(crate) fn with_cards(workplace_cards: [u64; 6]) -> Self {
        Self {
            offsets: vec![0],
            workers: Vec::new(),
            worker_codes: std::array::from_fn(|_| Vec::new()),
            workplace_codes: std::array::from_fn(|_| Vec::new()),
            workplace_cards,
        }
    }

    /// Append one establishment and its workers (its entire workforce —
    /// an establishment cannot be pushed twice).
    pub fn push_establishment(&mut self, workplace: &Workplace, workers: &[Worker]) {
        for (slot, attr) in WORKPLACE_ATTRS.iter().enumerate() {
            self.workplace_codes[slot].push(attr.value(workplace));
        }
        for worker in workers {
            let mut local = *worker;
            local.id =
                WorkerId(u32::try_from(self.workers.len()).expect("worker count exceeds u32"));
            for (slot, attr) in WORKER_ATTRS.iter().enumerate() {
                let code = attr.value(&local);
                debug_assert!(code < 256, "worker attribute code exceeds u8");
                self.worker_codes[slot].push(code as u8);
            }
            self.workers.push(local);
        }
        self.offsets
            .push(u32::try_from(self.workers.len()).expect("worker count exceeds u32"));
    }

    /// Establishments pushed so far.
    pub fn num_establishments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Workers pushed so far.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Seal the stream into an index. Local worker ids are dense in CSR
    /// order, so the employer column is read straight off the offsets.
    pub fn finish(self) -> TabulationIndex {
        let mut employer_of_worker = vec![0u32; self.workers.len()];
        for e in 0..self.offsets.len() - 1 {
            for slot in employer_of_worker
                .iter_mut()
                .take(self.offsets[e + 1] as usize)
                .skip(self.offsets[e] as usize)
            {
                *slot = e as u32;
            }
        }
        TabulationIndex {
            offsets: self.offsets,
            workers: self.workers,
            worker_codes: self.worker_codes,
            workplace_codes: self.workplace_codes,
            workplace_cards: self.workplace_cards,
            employer_of_worker: Arc::new(employer_of_worker),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};

    #[test]
    fn index_matches_dataset_layout() {
        let d = Generator::new(GeneratorConfig::test_small(3)).generate();
        let idx = TabulationIndex::build(&d);
        assert_eq!(idx.num_establishments(), d.num_workplaces());
        assert_eq!(idx.num_workers(), d.num_workers());
        // Every CSR range holds exactly that establishment's workers.
        for e in 0..idx.num_establishments() {
            let range = idx.worker_range(e);
            assert_eq!(
                range.len() as u32,
                d.establishment_size(lodes::WorkplaceId(e as u32))
            );
            for w in &idx.workers()[range] {
                assert_eq!(d.employer_of(w.id).0 as usize, e);
            }
        }
        // Columns agree with the record API.
        let sex = idx.worker_column(WorkerAttr::Sex);
        for (i, w) in idx.workers().iter().enumerate() {
            assert_eq!(sex[i] as u32, WorkerAttr::Sex.value(w));
        }
        let naics = idx.workplace_column(WorkplaceAttr::Naics);
        for (e, wp) in d.workplaces().iter().enumerate() {
            assert_eq!(naics[e], WorkplaceAttr::Naics.value(wp));
        }
    }

    #[test]
    fn shard_bounds_balance_worker_counts() {
        let d = Generator::new(GeneratorConfig::test_small(7)).generate();
        let idx = TabulationIndex::build(&d);
        let total = idx.num_workers();
        for shards in [1, 2, 3, 7, 16] {
            let bounds = idx.shard_bounds(shards);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), idx.num_establishments());
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "monotone bounds");
            let ideal = total.div_ceil(shards);
            let biggest_estab = (0..idx.num_establishments())
                .map(|e| idx.worker_range(e).len())
                .max()
                .unwrap_or(0);
            for w in bounds.windows(2) {
                let workers: usize = (w[0]..w[1]).map(|e| idx.worker_range(e).len()).sum();
                // Establishment-aligned boundaries can overshoot the ideal
                // by at most one establishment's worth of workers.
                assert!(
                    workers <= ideal + biggest_estab,
                    "shard {w:?} scans {workers} workers (ideal {ideal}, \
                     biggest establishment {biggest_estab})"
                );
            }
        }
    }

    #[test]
    fn schema_matches_dataset_schema() {
        let d = Generator::new(GeneratorConfig::test_small(5)).generate();
        let idx = TabulationIndex::build(&d);
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::Place, WorkplaceAttr::Naics],
            vec![WorkerAttr::Sex, WorkerAttr::Education],
        );
        let from_index = idx.schema(&spec);
        let from_dataset = CellSchema::new(&spec, &d);
        assert_eq!(from_index.domain_size(), from_dataset.domain_size());
        assert_eq!(from_index.attrs(), from_dataset.attrs());
        for i in 0..from_index.attrs().len() {
            assert_eq!(from_index.stride_of(i), from_dataset.stride_of(i));
            assert_eq!(from_index.cardinality_of(i), from_dataset.cardinality_of(i));
        }
    }
}
