//! Branch-free key kernels with runtime-dispatched SIMD paths.
//!
//! The tabulation inner loops (see [`crate::engine`] and [`crate::flows`])
//! spend most of their time on two multiply-add recurrences:
//!
//! * **worker sub-keys** — for every worker in a contiguous CSR span, the
//!   mixed-radix sub-key over the spec's ≤ 5 worker-attribute `u8` code
//!   columns (`Σ code · stride`). Worker sub-domains are tiny (≤ 768
//!   codes, the full cross product of the enum attributes), so sub-keys
//!   and strides both fit `u16` exactly;
//! * **establishment keys** — for every establishment in a contiguous
//!   range, the workplace part of the cell key over ≤ 6 `u32` code
//!   columns against `u64` schema strides.
//!
//! Both kernels fill a caller-provided output block; the evaluators then
//! run their unchanged scalar scatter/emit loops over the precomputed
//! keys. Because a kernel computes *exactly* the same integers as the
//! scalar recurrence (no floating point, no wrapping in range), the SIMD
//! and scalar paths are **bit-identical by construction** — the dispatch
//! choice can never change a released cell.
//!
//! The AVX2 paths are compiled behind the default-on `simd` feature on
//! `x86_64` and selected at runtime via `is_x86_feature_detected!`; every
//! other configuration (feature off, non-x86, no AVX2 at runtime) takes
//! the scalar fallback. [`Kernel::Scalar`] forces the fallback even when
//! AVX2 is available — the property tests and the benchmark use it to
//! compare the two paths on the same machine.

/// Which key-kernel implementation a tabulation should use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Kernel {
    /// Use the widest instruction set available at runtime (AVX2 when the
    /// `simd` feature is on, the CPU supports it, and the target is
    /// `x86_64`; the scalar path otherwise).
    #[default]
    Auto,
    /// Force the scalar path. Results are bit-identical to [`Kernel::Auto`]
    /// by construction; this exists for A/B benchmarking and for the
    /// SIMD-vs-scalar property tests.
    Scalar,
}

impl Kernel {
    /// Does this choice resolve to the AVX2 path on this machine?
    #[inline]
    pub fn resolves_to_simd(self) -> bool {
        matches!(self, Kernel::Auto) && simd_available()
    }
}

/// True when the AVX2 kernels are compiled in *and* the running CPU
/// supports them.
#[inline]
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Fill `out[j] = Σ_c cols[c][start + j] · strides[c]` for the worker span
/// `start .. start + out.len()`.
///
/// Sub-keys never exceed the worker sub-domain (≤ 768), so the `u16`
/// arithmetic is exact; the caller asserts strides fit when building its
/// plan.
#[inline]
pub(crate) fn worker_subkeys(
    cols: &[&[u8]],
    strides: &[u16],
    start: usize,
    out: &mut [u16],
    kernel: Kernel,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if kernel.resolves_to_simd() {
        // SAFETY: `resolves_to_simd` verified AVX2 support at runtime.
        unsafe { worker_subkeys_avx2(cols, strides, start, out) };
        return;
    }
    let _ = kernel;
    worker_subkeys_scalar(cols, strides, start, out);
}

fn worker_subkeys_scalar(cols: &[&[u8]], strides: &[u16], start: usize, out: &mut [u16]) {
    for (j, o) in out.iter_mut().enumerate() {
        let i = start + j;
        let mut key: u16 = 0;
        for (col, &stride) in cols.iter().zip(strides) {
            key += col[i] as u16 * stride;
        }
        *o = key;
    }
}

/// AVX2 worker sub-key kernel: 32 workers per iteration. Each `u8` column
/// chunk is widened to two `u16x16` lanes (`vpmovzxbw`), multiplied by the
/// splatted stride (`vpmullw`), and accumulated — the exact `u16`
/// arithmetic of the scalar recurrence, 16 lanes at a time.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn worker_subkeys_avx2(cols: &[&[u8]], strides: &[u16], start: usize, out: &mut [u16]) {
    use core::arch::x86_64::*;
    let n = out.len();
    let mut j = 0;
    while j + 32 <= n {
        let mut acc_lo = _mm256_setzero_si256();
        let mut acc_hi = _mm256_setzero_si256();
        for (col, &stride) in cols.iter().zip(strides) {
            debug_assert!(start + j + 32 <= col.len());
            let p = col.as_ptr().add(start + j);
            let bytes_lo = _mm_loadu_si128(p as *const __m128i);
            let bytes_hi = _mm_loadu_si128(p.add(16) as *const __m128i);
            let s = _mm256_set1_epi16(stride as i16);
            acc_lo = _mm256_add_epi16(
                acc_lo,
                _mm256_mullo_epi16(_mm256_cvtepu8_epi16(bytes_lo), s),
            );
            acc_hi = _mm256_add_epi16(
                acc_hi,
                _mm256_mullo_epi16(_mm256_cvtepu8_epi16(bytes_hi), s),
            );
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, acc_lo);
        _mm256_storeu_si256(out.as_mut_ptr().add(j + 16) as *mut __m256i, acc_hi);
        j += 32;
    }
    worker_subkeys_scalar(cols, strides, start + j, &mut out[j..]);
}

/// Fill `out[j] = Σ_c cols[c][start + j] · strides[c]` for the
/// establishment range `start .. start + out.len()`.
///
/// Keys stay inside the schema domain (`CellSchema` checked the full
/// cross product fits `u64` at construction), so the arithmetic is exact.
#[inline]
pub(crate) fn establishment_keys(
    cols: &[&[u32]],
    strides: &[u64],
    start: usize,
    out: &mut [u64],
    kernel: Kernel,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if kernel.resolves_to_simd() {
        // SAFETY: `resolves_to_simd` verified AVX2 support at runtime.
        unsafe { establishment_keys_avx2(cols, strides, start, out) };
        return;
    }
    let _ = kernel;
    establishment_keys_scalar(cols, strides, start, out);
}

fn establishment_keys_scalar(cols: &[&[u32]], strides: &[u64], start: usize, out: &mut [u64]) {
    for (j, o) in out.iter_mut().enumerate() {
        let i = start + j;
        let mut key: u64 = 0;
        for (col, &stride) in cols.iter().zip(strides) {
            key += col[i] as u64 * stride;
        }
        *o = key;
    }
}

/// AVX2 establishment-key kernel: 4 establishments per iteration. A `u32`
/// code times a `u64` stride is split into
/// `code·lo32(stride) + (code·hi32(stride)) << 32`, both exact under
/// `vpmuludq` because every partial product is bounded by the full key,
/// which the schema proved fits `u64`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn establishment_keys_avx2(cols: &[&[u32]], strides: &[u64], start: usize, out: &mut [u64]) {
    use core::arch::x86_64::*;
    let n = out.len();
    let mut j = 0;
    while j + 4 <= n {
        let mut acc = _mm256_setzero_si256();
        for (col, &stride) in cols.iter().zip(strides) {
            debug_assert!(start + j + 4 <= col.len());
            let p = col.as_ptr().add(start + j);
            let codes = _mm256_cvtepu32_epi64(_mm_loadu_si128(p as *const __m128i));
            let lo = _mm256_mul_epu32(codes, _mm256_set1_epi64x((stride & 0xFFFF_FFFF) as i64));
            let hi = _mm256_mul_epu32(codes, _mm256_set1_epi64x((stride >> 32) as i64));
            acc = _mm256_add_epi64(acc, _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(hi)));
        }
        _mm256_storeu_si256(out.as_mut_ptr().add(j) as *mut __m256i, acc);
        j += 4;
    }
    establishment_keys_scalar(cols, strides, start + j, &mut out[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random byte stream (tests must not depend on
    /// external RNG crates here).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn worker_kernel_matches_scalar_on_all_lengths() {
        let mut state = 0x1234_5678_9abc_def0u64;
        // Columns long enough for every start offset and chunk remainder.
        let cols_data: Vec<Vec<u8>> = (0..5)
            .map(|_| (0..300).map(|_| (xorshift(&mut state) % 8) as u8).collect())
            .collect();
        let strides: Vec<u16> = vec![384, 48, 8, 4, 1];
        for ncols in 0..=5 {
            let cols: Vec<&[u8]> = cols_data[..ncols].iter().map(|c| c.as_slice()).collect();
            for start in [0usize, 1, 7] {
                for len in [0usize, 1, 5, 31, 32, 33, 64, 100, 257] {
                    let mut scalar = vec![0u16; len];
                    let mut auto = vec![0xAAAAu16; len];
                    worker_subkeys(&cols, &strides[..ncols], start, &mut scalar, Kernel::Scalar);
                    worker_subkeys(&cols, &strides[..ncols], start, &mut auto, Kernel::Auto);
                    assert_eq!(scalar, auto, "ncols={ncols} start={start} len={len}");
                }
            }
        }
    }

    #[test]
    fn establishment_kernel_matches_scalar_including_wide_strides() {
        let mut state = 0xdead_beef_cafe_f00du64;
        let cols_data: Vec<Vec<u32>> = (0..6)
            .map(|_| {
                (0..100)
                    .map(|_| (xorshift(&mut state) % 40_000) as u32)
                    .collect()
            })
            .collect();
        // Include strides above 2^32 to exercise the hi/lo split.
        let strides: Vec<u64> = vec![1 << 36, 3 << 33, 1 << 20, 77_777, 640, 1];
        for ncols in 0..=6 {
            let cols: Vec<&[u32]> = cols_data[..ncols].iter().map(|c| c.as_slice()).collect();
            for start in [0usize, 3] {
                for len in [0usize, 1, 3, 4, 5, 8, 17, 64, 97] {
                    let mut scalar = vec![0u64; len];
                    let mut auto = vec![u64::MAX; len];
                    establishment_keys(
                        &cols,
                        &strides[..ncols],
                        start,
                        &mut scalar,
                        Kernel::Scalar,
                    );
                    establishment_keys(&cols, &strides[..ncols], start, &mut auto, Kernel::Auto);
                    assert_eq!(scalar, auto, "ncols={ncols} start={start} len={len}");
                }
            }
        }
    }

    #[test]
    fn kernel_choice_reports_dispatch() {
        assert!(!Kernel::Scalar.resolves_to_simd());
        // On an AVX2 machine with the feature on, Auto must take the SIMD
        // path; elsewhere both choices collapse to scalar.
        assert_eq!(Kernel::Auto.resolves_to_simd(), simd_available());
    }
}
