//! Marginal (GROUP BY) query engine over linked ER-EE data.
//!
//! Definition 2.1 of the paper: the marginal query `q_V(D)` returns one
//! count per cell of the cross-product domain of the grouping attributes
//! `V = V_I ∪ V_W` (worker attributes and workplace attributes), evaluated
//! over the joined `WorkerFull` relation —
//! `SELECT COUNT(*) FROM D GROUP BY V`.
//!
//! Beyond raw counts, every released cell carries the metadata the privacy
//! mechanisms need:
//!
//! * `max_establishment` — `x_v`, the largest contribution of any single
//!   establishment to the cell. Lemma 8.5 shows the smooth sensitivity of a
//!   count under (α,ε)-ER-EE privacy is `max(x_v·α, 1)`, so the Smooth
//!   Gamma and Smooth Laplace mechanisms consume this value directly.
//! * `establishments` — the number of contributing establishments (used by
//!   the SDL attack demonstrations, which need singleton-establishment
//!   cells).
//!
//! Evaluation runs on a columnar, employer-grouped [`TabulationIndex`]
//! (CSR worker ranges + pre-extracted attribute code columns), built once
//! per dataset and shared across every tabulation of it; the
//! establishment loop shards across scoped threads and merges sorted
//! per-shard runs deterministically. The engine is deterministic: cells
//! live in a `Vec` sorted by packed key, so iteration order (and
//! therefore experiment output) is stable across runs *and* bit-identical
//! at any thread count.
//!
//! Sub-population workloads (Ranking 2, OnTheMap-style extracts) restrict
//! the tabulated population with a declarative [`FilterExpr`] — a
//! serializable AST over worker and workplace attributes with a stable
//! content digest ([`FilterId`]) — compiled against the index into the
//! same closure form the raw `Fn(&Worker) -> bool` API consumes; see
//! [`filter`].

// Marginals, specs, filters, and the index are agency-facing API surface;
// undocumented additions fail `cargo doc -D warnings` in CI.
#![warn(missing_docs)]

pub mod area;
pub mod attr;
pub mod cell;
pub mod engine;
pub mod filter;
pub mod flows;
pub mod index;
pub mod kernel;
pub mod marginal;
pub mod region;
pub mod strata;
pub mod workload;

pub use area::{area_comparison, validate_disjoint, AreaSelection, OverlapError};
pub use attr::{Attr, MarginalSpec, WorkerAttr, WorkplaceAttr};
pub use cell::{CellKey, CellSchema};
pub use engine::{compute_marginal, compute_marginal_expr, compute_marginal_filtered};
#[cfg(feature = "reference")]
pub use engine::{compute_marginal_filtered_legacy, compute_marginal_legacy};
pub use filter::{Cmp, CompiledFilter, FilterExpr, FilterId};
#[cfg(feature = "reference")]
pub use flows::compute_flows_legacy;
pub use flows::{compute_flows, FlowMarginal, FlowStats};
pub use index::{IndexBuilder, TabulationIndex};
pub use kernel::{simd_available, Kernel};
pub use marginal::{CellStats, Marginal};
pub use region::{DatasetIndex, RegionIndexBuilder, RegionShardedIndex};
pub use strata::stratify_by_place_size;
pub use workload::{ranking2_expr, ranking2_filter, workload1, workload2, workload3};
