//! Materialized marginal query results.

use crate::attr::{Attr, MarginalSpec, WorkerAttr};
use crate::cell::{CellKey, CellSchema};
use serde::{get_field, DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Per-cell statistics of a marginal query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellStats {
    /// The true count `q_V(D, v)`.
    pub count: u64,
    /// Number of distinct establishments contributing to the cell.
    pub establishments: u32,
    /// `x_v`: the largest contribution of any single establishment — the
    /// driver of smooth sensitivity (Lemma 8.5).
    pub max_establishment: u32,
}

/// A materialized marginal: nonzero cells with stats, plus the schema needed
/// to decode keys.
///
/// Only nonzero cells are stored. LODES publications release sparse tables
/// (zeros are implicit and, under the current SDL, exact); the evaluation
/// follows the paper in computing error over the published (nonzero) cells.
///
/// Cells are held in a `Vec` sorted by packed key — the output shape the
/// tabulation engine's sorted-run merge produces directly. Ordered
/// iteration is identical to the former `BTreeMap` store; point lookups
/// ([`cell`](Self::cell)) are a binary search; merges, scans, and
/// serialization walk contiguous memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marginal {
    spec: MarginalSpec,
    schema: CellSchema,
    /// Nonzero cells, strictly ascending by key.
    cells: Vec<(CellKey, CellStats)>,
    total: u64,
}

impl Marginal {
    /// Assemble a marginal from parts (used by the legacy reference
    /// engine, which only exists under the `reference` feature).
    #[cfg(feature = "reference")]
    pub(crate) fn new(
        spec: MarginalSpec,
        schema: CellSchema,
        cells: BTreeMap<CellKey, CellStats>,
    ) -> Self {
        // BTreeMap iteration is ascending by key, so the collected Vec
        // satisfies the sorted-store invariant by construction.
        Self::from_sorted(spec, schema, cells.into_iter().collect())
    }

    /// Assemble a marginal from an already-sorted cell run (the tabulation
    /// engine's merge output).
    ///
    /// # Panics
    /// Debug-asserts that keys are strictly ascending.
    pub(crate) fn from_sorted(
        spec: MarginalSpec,
        schema: CellSchema,
        cells: Vec<(CellKey, CellStats)>,
    ) -> Self {
        debug_assert!(
            cells.windows(2).all(|w| w[0].0 < w[1].0),
            "cell run must be strictly sorted by key"
        );
        let total = cells.iter().map(|(_, c)| c.count).sum();
        Self {
            spec,
            schema,
            cells,
            total,
        }
    }

    /// The query specification.
    pub fn spec(&self) -> &MarginalSpec {
        &self.spec
    }

    /// The key schema.
    pub fn schema(&self) -> &CellSchema {
        &self.schema
    }

    /// Number of nonzero cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Sum of all cell counts (equals the number of jobs matching the
    /// marginal's implicit universe).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Stats for one cell; `None` when the true count is zero.
    pub fn cell(&self, key: CellKey) -> Option<&CellStats> {
        self.cells
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| &self.cells[i].1)
    }

    /// Iterate over nonzero cells in key order.
    pub fn iter(&self) -> impl Iterator<Item = (CellKey, &CellStats)> {
        self.cells.iter().map(|(k, v)| (*k, v))
    }

    /// The count vector in key order (for error metrics).
    pub fn counts(&self) -> Vec<u64> {
        self.cells.iter().map(|(_, c)| c.count).collect()
    }

    /// A stable FNV-1a digest over every cell — key, count, contributing
    /// establishments, and `x_v`, folded in key order, prefixed by the
    /// cell count. Two marginals with equal digests (and equal specs)
    /// carry bit-identical published statistics; a persistent truth store
    /// records this digest next to the serialized cells and refuses loads
    /// that no longer reproduce it.
    pub fn content_digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(self.cells.len() as u64);
        for &(key, stats) in &self.cells {
            fold(key.0);
            fold(stats.count);
            fold((stats.establishments as u64) | ((stats.max_establishment as u64) << 32));
        }
        hash
    }

    /// Restrict to cells where each listed worker attribute takes the given
    /// value, then *project away* the worker attributes — yielding, e.g.,
    /// the "females with a bachelor's degree" slice of a
    /// place×naics×ownership×sex×education marginal, keyed like the
    /// corresponding place×naics×ownership marginal (used by Ranking 2).
    ///
    /// # Panics
    /// Panics if a listed attribute is not part of this marginal.
    pub fn slice_worker_attrs(&self, fixed: &[(WorkerAttr, u32)]) -> BTreeMap<CellKey, u64> {
        let positions: Vec<(usize, u32)> = fixed
            .iter()
            .map(|&(attr, value)| {
                let pos = self
                    .schema
                    .position_of(Attr::Worker(attr))
                    .unwrap_or_else(|| panic!("attribute {attr:?} not in marginal"));
                (pos, value)
            })
            .collect();
        // Positions of attributes to keep (everything except *all* worker
        // attributes; slicing fixes some and sums out any others).
        let keep: Vec<usize> = self
            .schema
            .attrs()
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, Attr::Workplace(_)))
            .map(|(i, _)| i)
            .collect();

        let mut out: BTreeMap<CellKey, u64> = BTreeMap::new();
        for &(key, ref stats) in &self.cells {
            if positions
                .iter()
                .all(|&(pos, val)| self.schema.value_of(key, pos) == val)
            {
                // Re-encode using only the kept (workplace) positions,
                // preserving their relative order — mixed-radix packing over
                // kept attributes, matching the layout `CellSchema` would
                // produce for the workplace-only spec.
                let mut packed: u64 = 0;
                for &pos in &keep {
                    packed = packed * self.schema.cardinality_of(pos)
                        + self.schema.value_of(key, pos) as u64;
                }
                *out.entry(CellKey(packed)).or_insert(0) += stats.count;
            }
        }
        out
    }
}

/// The stable serialized form of a marginal: spec, schema (attributes +
/// cardinalities), and the sorted cell run. The total is derived on load,
/// never trusted from the snapshot.
impl Serialize for Marginal {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("spec".to_string(), self.spec.to_value()),
            ("schema".to_string(), self.schema.to_value()),
            ("cells".to_string(), self.cells.to_value()),
        ])
    }
}

impl Deserialize for Marginal {
    /// Reconstruct from the serialized form, re-validating every invariant
    /// the tabulation engine guarantees by construction: the cell run must
    /// be strictly ascending by key, every key must lie inside the
    /// schema's domain, and only nonzero cells may be stored. A snapshot
    /// violating any of these is refused — a persisted truth is untrusted
    /// input until it proves itself.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let spec = MarginalSpec::from_value(get_field(v, "spec")?)?;
        let schema = CellSchema::from_value(get_field(v, "schema")?)?;
        let cells = Vec::<(CellKey, CellStats)>::from_value(get_field(v, "cells")?)?;
        let spec_attrs: Vec<Attr> = spec.attrs().collect();
        if schema.attrs() != spec_attrs.as_slice() {
            return Err(DeError::new(
                "marginal schema attributes disagree with its spec",
            ));
        }
        if !cells.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(DeError::new(
                "marginal cells are not strictly sorted by key",
            ));
        }
        let domain = schema.domain_size();
        let mut total: u64 = 0;
        for &(key, stats) in &cells {
            if key.0 >= domain {
                return Err(DeError::new(format!(
                    "cell key {} outside schema domain {domain}",
                    key.0
                )));
            }
            if stats.count == 0 {
                return Err(DeError::new("zero-count cell in marginal snapshot"));
            }
            // Per-cell stats invariants the evaluator guarantees: every
            // stored cell has at least one contributing establishment,
            // and neither the establishment count nor x_v (the largest
            // single-establishment contribution, which drives smooth
            // sensitivity) can exceed the cell's total count.
            if stats.establishments == 0
                || stats.max_establishment == 0
                || stats.establishments as u64 > stats.count
                || stats.max_establishment as u64 > stats.count
            {
                return Err(DeError::new(format!(
                    "impossible cell stats in marginal snapshot (count {}, establishments {}, \
                     max_establishment {})",
                    stats.count, stats.establishments, stats.max_establishment
                )));
            }
            total = total
                .checked_add(stats.count)
                .ok_or_else(|| DeError::new("marginal total overflows u64"))?;
        }
        Ok(Self {
            spec,
            schema,
            cells,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::attr::{MarginalSpec, WorkerAttr, WorkplaceAttr};
    use crate::engine::compute_marginal;
    use lodes::{Generator, GeneratorConfig};

    #[test]
    fn totals_and_cells_consistent() {
        let d = Generator::new(GeneratorConfig::test_small(1)).generate();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        let m = compute_marginal(&d, &spec);
        assert_eq!(m.total() as usize, d.num_jobs());
        assert!(m.num_cells() <= 20);
        for (_, stats) in m.iter() {
            assert!(stats.count > 0, "only nonzero cells stored");
            assert!(stats.max_establishment as u64 <= stats.count);
            assert!(stats.establishments > 0);
        }
    }

    #[test]
    fn serde_round_trip_is_bit_identical() {
        let d = Generator::new(GeneratorConfig::test_small(3)).generate();
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::Naics, WorkplaceAttr::Ownership],
            vec![WorkerAttr::Sex],
        );
        let m = compute_marginal(&d, &spec);
        let json = serde_json::to_string(&m).unwrap();
        let back: super::Marginal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.content_digest(), m.content_digest());
        assert_eq!(back.total(), m.total());
        assert_eq!(back.schema().domain_size(), m.schema().domain_size());
    }

    #[test]
    fn deserialization_refuses_invalid_snapshots() {
        let d = Generator::new(GeneratorConfig::test_small(3)).generate();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        let m = compute_marginal(&d, &spec);
        let json = serde_json::to_string(&m).unwrap();
        // A zero-count cell can never be stored.
        let (key, stats) = m.iter().next().expect("nonempty marginal");
        let tampered = json.replace(
            &format!("[{},{{\"count\":{}", key.0, stats.count),
            &format!("[{},{{\"count\":0", key.0),
        );
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<super::Marginal>(&tampered).is_err());
        // A cell key outside the schema's domain is refused.
        let domain = m.schema().domain_size();
        let tampered = json.replacen(&format!("[{}", key.0), &format!("[{domain}"), 1);
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<super::Marginal>(&tampered).is_err());
        // Impossible stats are refused: x_v can never exceed the count.
        let tampered = json.replacen(
            &format!("\"max_establishment\":{}", stats.max_establishment),
            &format!("\"max_establishment\":{}", stats.count + 1),
            1,
        );
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<super::Marginal>(&tampered).is_err());
    }

    #[test]
    fn content_digest_tracks_cell_changes() {
        let d = Generator::new(GeneratorConfig::test_small(5)).generate();
        let a = compute_marginal(&d, &MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]));
        let b = compute_marginal(&d, &MarginalSpec::new(vec![WorkplaceAttr::County], vec![]));
        assert_ne!(a.content_digest(), b.content_digest());
        let a2 = compute_marginal(&d, &MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]));
        assert_eq!(a.content_digest(), a2.content_digest());
    }

    #[test]
    fn slice_extracts_fixed_worker_values() {
        let d = Generator::new(GeneratorConfig::test_small(2)).generate();
        let full = compute_marginal(
            &d,
            &MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![WorkerAttr::Sex]),
        );
        let females = full.slice_worker_attrs(&[(WorkerAttr::Sex, 1)]);
        let males = full.slice_worker_attrs(&[(WorkerAttr::Sex, 0)]);
        let f_total: u64 = females.values().sum();
        let m_total: u64 = males.values().sum();
        assert_eq!(f_total + m_total, full.total());
    }
}
