//! Region-sharded tabulation: one independent [`TabulationIndex`] per
//! state, tabulated in parallel and combined by the engine's
//! deterministic k-way merge.
//!
//! National-scale production (10–100 M job records) does not fit the
//! "one flat CSR index" model forever: the index build is a serial pass,
//! the columns become multi-gigabyte allocations, and a future
//! multi-machine deployment needs a partition unit that can live on
//! different nodes. The natural unit is the **state**: LODES/QWI
//! processing is state-partitioned in real life, every establishment
//! belongs to exactly one state, and a state never straddles two shards —
//! so each shard's `(cell key, contribution)` runs are *disjoint by
//! establishment* and the existing commutative merge
//! (`crate::engine::merge_runs` / `crate::flows::merge_flow_runs`)
//! combines them into a [`Marginal`]/[`FlowMarginal`] **bit-identical**
//! to what one flat index over the whole country would produce.
//!
//! Two invariants make that identity hold by construction:
//!
//! * Every shard snapshots the **universe** geography's attribute
//!   cardinalities (not its own subset), so all shards — and the flat
//!   index — derive the same [`CellSchema`], strides and all. Workplace
//!   codes are global ids (a state-3 county keeps its global county
//!   code in the state-3 shard), so keys agree across shards.
//! * Each establishment is tabulated exactly once, by its home shard, so
//!   the merged multiset of per-establishment contributions is the same
//!   multiset the flat evaluator emits; all merge aggregates are
//!   commutative.
//!
//! **Worker ids are shard-local.** Each shard's index rebases worker ids
//! dense-per-shard (see [`IndexBuilder`]); declarative [`FilterExpr`]
//! filters are unaffected (compiled per shard, they read attributes
//! only), but raw closure filters that inspect `Worker::id` would see
//! local ids — the engine's filters never do.
//!
//! [`DatasetIndex`] is the dispatch layer the release engine holds: a
//! flat index for ordinary datasets, a [`RegionShardedIndex`] above a
//! size threshold, one evaluator surface over both.

use crate::attr::MarginalSpec;
use crate::cell::CellSchema;
use crate::engine::{merge_runs, tabulate_shard, ShardPlan, MIN_SHARD_WORKERS};
use crate::filter::FilterExpr;
use crate::flows::{flow_shard, merge_flow_runs, FlowMarginal, FlowPlan};
use crate::index::{cards_from_geography, schema_from_cards, IndexBuilder, TabulationIndex};
use crate::kernel::Kernel;
use crate::marginal::Marginal;
use lodes::{Dataset, Geography, Worker, WorkerId, Workplace};
use std::sync::Arc;

/// A per-shard optional worker predicate, borrowed for one evaluation.
type ShardFilter<'a> = Option<&'a (dyn Fn(&Worker) -> bool + Sync)>;

/// One state's slice of the universe: its home-state id plus a flat
/// [`TabulationIndex`] over exactly its establishments.
#[derive(Debug, Clone)]
struct RegionShard {
    /// Global state id this shard owns.
    state: u32,
    index: TabulationIndex,
}

/// A national dataset partitioned by state into independent
/// [`TabulationIndex`]es — the multi-machine partition unit — whose
/// tabulations merge bit-identically to a single flat index.
///
/// See the [module docs](self) for the identity argument. Built either
/// from a materialized [`Dataset`] ([`RegionShardedIndex::build`]) or
/// streamed establishment-at-a-time through [`RegionIndexBuilder`]
/// without ever materializing the dataset.
#[derive(Debug, Clone)]
pub struct RegionShardedIndex {
    /// Shards in ascending state order; states with no establishments
    /// have no shard.
    shards: Vec<RegionShard>,
    /// Universe workplace-attribute cardinalities (every shard snapshots
    /// these same values).
    workplace_cards: [u64; 6],
    num_workers: usize,
    num_establishments: usize,
}

impl RegionShardedIndex {
    /// Partition `dataset` by state and index each partition. One
    /// counting-sort pass over the job table, then one streaming append
    /// per establishment — `O(workers + establishments)` like the flat
    /// build.
    pub fn build(dataset: &Dataset) -> Self {
        let mut builder = RegionIndexBuilder::new(dataset.geography());
        let (offsets, order) = dataset.workers_by_employer();
        let mut buf: Vec<Worker> = Vec::new();
        for (e, wp) in dataset.workplaces().iter().enumerate() {
            buf.clear();
            buf.extend(
                order[offsets[e] as usize..offsets[e + 1] as usize]
                    .iter()
                    .map(|&w| *dataset.worker(WorkerId(w))),
            );
            builder.push_establishment(wp, &buf);
        }
        builder.finish()
    }

    /// Number of state shards (states with at least one establishment).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Global state ids with a shard, ascending.
    pub fn shard_states(&self) -> impl Iterator<Item = u32> + '_ {
        self.shards.iter().map(|s| s.state)
    }

    /// Total workers across all shards.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Total establishments across all shards.
    pub fn num_establishments(&self) -> usize {
        self.num_establishments
    }

    /// The key schema `spec` induces — identical to the flat index's
    /// [`TabulationIndex::schema`] over the same universe.
    pub fn schema(&self, spec: &MarginalSpec) -> CellSchema {
        schema_from_cards(&self.workplace_cards, spec)
    }

    /// Advisory shard-count heuristic over the whole region set — same
    /// floor as [`TabulationIndex::effective_shards`], applied to the
    /// national worker count.
    pub fn effective_shards(&self, threads: usize) -> usize {
        threads
            .max(1)
            .min((self.num_workers / MIN_SHARD_WORKERS).max(1))
            .min(self.num_establishments.max(1))
    }

    /// Evaluate `q_V` across all region shards, splitting up to `threads`
    /// scoped workers among them in proportion to shard worker counts.
    /// Bit-identical to the flat index's result at any thread count.
    pub fn marginal_sharded(&self, spec: &MarginalSpec, threads: usize) -> Marginal {
        self.marginal_sharded_with_kernel(spec, threads, Kernel::Auto)
    }

    /// [`marginal_sharded`](Self::marginal_sharded) with an explicit
    /// [`Kernel`] choice.
    pub fn marginal_sharded_with_kernel(
        &self,
        spec: &MarginalSpec,
        threads: usize,
        kernel: Kernel,
    ) -> Marginal {
        let filters = vec![None; self.shards.len()];
        self.marginal_with_filters(spec, filters, threads, kernel)
    }

    /// Evaluate `q_V` over only the workers matching `filter`. The
    /// closure receives shard-local worker records (rebased ids — see the
    /// [module docs](self)); attribute-based predicates behave exactly as
    /// on a flat index.
    pub fn marginal_filtered_sharded<F>(
        &self,
        spec: &MarginalSpec,
        filter: F,
        threads: usize,
    ) -> Marginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        let f: &(dyn Fn(&Worker) -> bool + Sync) = &filter;
        let filters = vec![Some(f); self.shards.len()];
        self.marginal_with_filters(spec, filters, threads, Kernel::Auto)
    }

    /// Evaluate `q_V` over only the records matching the declarative
    /// filter `expr`, compiled once per shard (workplace leaves resolve
    /// against each shard's own establishment columns). Bit-identical to
    /// the flat index's [`TabulationIndex::marginal_expr_sharded`].
    pub fn marginal_expr_sharded(
        &self,
        spec: &MarginalSpec,
        expr: &FilterExpr,
        threads: usize,
    ) -> Marginal {
        self.marginal_expr_sharded_with_kernel(spec, expr, threads, Kernel::Auto)
    }

    /// [`marginal_expr_sharded`](Self::marginal_expr_sharded) with an
    /// explicit [`Kernel`] choice.
    pub fn marginal_expr_sharded_with_kernel(
        &self,
        spec: &MarginalSpec,
        expr: &FilterExpr,
        threads: usize,
        kernel: Kernel,
    ) -> Marginal {
        let compiled: Vec<_> = self.shards.iter().map(|s| expr.compile(&s.index)).collect();
        let closures: Vec<_> = compiled
            .iter()
            .map(|c| move |w: &Worker| c.matches(w))
            .collect();
        let filters: Vec<ShardFilter<'_>> = closures
            .iter()
            .map(|c| Some(c as &(dyn Fn(&Worker) -> bool + Sync)))
            .collect();
        self.marginal_with_filters(spec, filters, threads, kernel)
    }

    /// The sharded evaluator core: one [`ShardPlan`] per region shard
    /// (with that shard's filter), worker-proportional thread budgets,
    /// every establishment window tabulated in one scope, all runs merged
    /// by the deterministic k-way merge.
    fn marginal_with_filters(
        &self,
        spec: &MarginalSpec,
        filters: Vec<ShardFilter<'_>>,
        threads: usize,
        kernel: Kernel,
    ) -> Marginal {
        let schema = self.schema(spec);
        let plans: Vec<ShardPlan<'_>> = self
            .shards
            .iter()
            .zip(&filters)
            .map(|(s, &f)| ShardPlan::new(&s.index, spec, &schema, f, kernel))
            .collect();
        let tasks = self.plan_tasks(threads);
        let runs: Vec<Vec<(u64, u32)>> = if threads.max(1) <= 1 {
            tasks
                .iter()
                .map(|&(i, lo, hi)| tabulate_shard(&plans[i], lo, hi))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let plans = &plans;
                let handles: Vec<_> = tasks
                    .iter()
                    .map(|&(i, lo, hi)| scope.spawn(move || tabulate_shard(&plans[i], lo, hi)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("region tabulation shard panicked"))
                    .collect()
            })
        };
        Marginal::from_sorted(spec.clone(), schema, merge_runs(runs))
    }

    /// Split `threads` across region shards in proportion to worker
    /// counts (every shard gets at least one window) and expand each
    /// budget into worker-balanced establishment windows. Returns
    /// `(shard, lo, hi)` tasks. Pure function of the index and `threads`,
    /// but determinism never depends on it — the merge does that.
    fn plan_tasks(&self, threads: usize) -> Vec<(usize, usize, usize)> {
        let threads = threads.max(1);
        let total = self.num_workers.max(1);
        let mut tasks = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let budget = (threads * shard.index.num_workers() / total).max(1);
            for w in shard.index.shard_bounds(budget).windows(2) {
                tasks.push((i, w[0], w[1]));
            }
        }
        tasks
    }

    /// Tabulate job flows from this sharded quarter (`t`) to `after`
    /// (`t+1`). Both quarters must share the establishment frame shard by
    /// shard (the panel generator guarantees a fixed frame, so partitions
    /// agree). Bit-identical to the flat pair's
    /// [`TabulationIndex::flows_sharded`].
    ///
    /// # Panics
    /// Panics if the spec has worker attributes or the shard structures
    /// disagree (different states or establishment counts).
    pub fn flows_sharded(
        &self,
        after: &RegionShardedIndex,
        spec: &MarginalSpec,
        threads: usize,
    ) -> FlowMarginal {
        self.flows_with_filters(
            after,
            spec,
            vec![None; self.shards.len()],
            threads,
            Kernel::Auto,
        )
    }

    /// Tabulate job flows over only the workers matching `filter` on both
    /// sides of the pair (shard-local worker records, as with
    /// [`marginal_filtered_sharded`](Self::marginal_filtered_sharded)).
    pub fn flows_filtered_sharded<F>(
        &self,
        after: &RegionShardedIndex,
        spec: &MarginalSpec,
        filter: F,
        threads: usize,
    ) -> FlowMarginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        let f: &(dyn Fn(&Worker) -> bool + Sync) = &filter;
        let filters = vec![Some((f, f)); self.shards.len()];
        self.flows_with_filters(after, spec, filters, threads, Kernel::Auto)
    }

    /// Tabulate job flows over only the records matching the declarative
    /// filter `expr`, compiled per shard per quarter.
    pub fn flows_expr_sharded(
        &self,
        after: &RegionShardedIndex,
        spec: &MarginalSpec,
        expr: &FilterExpr,
        threads: usize,
    ) -> FlowMarginal {
        let before_compiled: Vec<_> = self.shards.iter().map(|s| expr.compile(&s.index)).collect();
        let after_compiled: Vec<_> = after
            .shards
            .iter()
            .map(|s| expr.compile(&s.index))
            .collect();
        let closures: Vec<_> = before_compiled
            .iter()
            .zip(&after_compiled)
            .map(|(b, a)| {
                (
                    move |w: &Worker| b.matches(w),
                    move |w: &Worker| a.matches(w),
                )
            })
            .collect();
        let filters: Vec<_> = closures
            .iter()
            .map(|(b, a)| {
                Some((
                    b as &(dyn Fn(&Worker) -> bool + Sync),
                    a as &(dyn Fn(&Worker) -> bool + Sync),
                ))
            })
            .collect();
        self.flows_with_filters(after, spec, filters, threads, Kernel::Auto)
    }

    /// The sharded flow evaluator core: one [`FlowPlan`] per aligned
    /// shard pair, the same worker-proportional task split as marginals,
    /// merged by the deterministic flow merge.
    #[allow(clippy::type_complexity)]
    fn flows_with_filters(
        &self,
        after: &RegionShardedIndex,
        spec: &MarginalSpec,
        filters: Vec<
            Option<(
                &(dyn Fn(&Worker) -> bool + Sync),
                &(dyn Fn(&Worker) -> bool + Sync),
            )>,
        >,
        threads: usize,
        kernel: Kernel,
    ) -> FlowMarginal {
        assert_eq!(
            self.shards.len(),
            after.shards.len(),
            "flow tabulation requires matching region shard structures"
        );
        let schema = self.schema(spec);
        let plans: Vec<FlowPlan<'_>> = self
            .shards
            .iter()
            .zip(&after.shards)
            .zip(&filters)
            .map(|((b, a), &f)| {
                assert_eq!(
                    b.state, a.state,
                    "flow tabulation requires matching region shard structures"
                );
                FlowPlan::new(&b.index, &a.index, spec, &schema, f, kernel)
            })
            .collect();
        let tasks = self.plan_tasks(threads);
        let runs: Vec<Vec<(u64, u32, u32)>> = if threads.max(1) <= 1 {
            tasks
                .iter()
                .map(|&(i, lo, hi)| flow_shard(&plans[i], lo, hi))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let plans = &plans;
                let handles: Vec<_> = tasks
                    .iter()
                    .map(|&(i, lo, hi)| scope.spawn(move || flow_shard(&plans[i], lo, hi)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("region flow shard panicked"))
                    .collect()
            })
        };
        FlowMarginal::from_sorted(spec.clone(), schema, merge_flow_runs(runs))
    }
}

/// Streaming [`RegionShardedIndex`] construction: establishments arrive
/// in any order and are routed to their home state's [`IndexBuilder`].
///
/// The national-scale path: the generator streams establishments (see
/// `lodes::Generator::for_each_establishment`) straight into this
/// builder, so peak memory is the finished shards themselves — no flat
/// [`Dataset`], no counting-sort scratch.
#[derive(Debug, Clone)]
pub struct RegionIndexBuilder {
    cards: [u64; 6],
    /// Lazily created per-state builders, indexed by global state id.
    builders: Vec<Option<IndexBuilder>>,
}

impl RegionIndexBuilder {
    /// Start an empty sharded index over `geography` (the universe — its
    /// cardinalities are snapshotted into every shard so all shards share
    /// one schema).
    pub fn new(geography: &Geography) -> Self {
        Self {
            cards: cards_from_geography(geography),
            builders: vec![None; geography.num_states() as usize],
        }
    }

    /// Route one establishment (and its whole workforce) to its home
    /// state's shard.
    ///
    /// # Panics
    /// Panics if the workplace's state id is outside the geography.
    pub fn push_establishment(&mut self, workplace: &Workplace, workers: &[Worker]) {
        let cards = self.cards;
        self.builders[workplace.state.0 as usize]
            .get_or_insert_with(|| IndexBuilder::with_cards(cards))
            .push_establishment(workplace, workers);
    }

    /// Establishments pushed so far, across all shards.
    pub fn num_establishments(&self) -> usize {
        self.builders
            .iter()
            .flatten()
            .map(IndexBuilder::num_establishments)
            .sum()
    }

    /// Workers pushed so far, across all shards.
    pub fn num_workers(&self) -> usize {
        self.builders
            .iter()
            .flatten()
            .map(IndexBuilder::num_workers)
            .sum()
    }

    /// Seal every shard. States that never saw an establishment get no
    /// shard (their cells would be empty anyway).
    pub fn finish(self) -> RegionShardedIndex {
        let cards = self.cards;
        let shards: Vec<RegionShard> = self
            .builders
            .into_iter()
            .enumerate()
            .filter_map(|(state, b)| {
                b.map(|b| RegionShard {
                    state: state as u32,
                    index: b.finish(),
                })
            })
            .collect();
        let num_workers = shards.iter().map(|s| s.index.num_workers()).sum();
        let num_establishments = shards.iter().map(|s| s.index.num_establishments()).sum();
        RegionShardedIndex {
            shards,
            workplace_cards: cards,
            num_workers,
            num_establishments,
        }
    }
}

/// Size threshold above which [`DatasetIndex::build_auto`] switches to
/// the region-sharded representation (4 M jobs — well past the point
/// where the flat build's serial counting sort and monolithic columns
/// start to dominate).
pub const SHARD_JOB_THRESHOLD: usize = 4_000_000;

/// The release engine's view of an indexed dataset: one flat
/// [`TabulationIndex`] for ordinary datasets, a [`RegionShardedIndex`]
/// at national scale — one evaluator surface over both, every result
/// bit-identical between the two representations.
#[derive(Debug, Clone)]
pub enum DatasetIndex {
    /// A single flat CSR index (the default).
    Single(Arc<TabulationIndex>),
    /// State-partitioned shards (national scale).
    Sharded(Arc<RegionShardedIndex>),
}

impl DatasetIndex {
    /// Index `dataset`, choosing the representation automatically: region
    /// shards when the dataset has at least [`SHARD_JOB_THRESHOLD`] jobs
    /// *and* more than one state (a single-state universe has exactly one
    /// shard — the flat index, without the dispatch layer).
    pub fn build_auto(dataset: &Dataset) -> Self {
        Self::build_with_threshold(dataset, SHARD_JOB_THRESHOLD)
    }

    /// [`build_auto`](Self::build_auto) with an explicit job-count
    /// threshold (tests force both representations on small data).
    pub fn build_with_threshold(dataset: &Dataset, threshold: usize) -> Self {
        if dataset.num_jobs() >= threshold && dataset.geography().num_states() > 1 {
            Self::Sharded(Arc::new(RegionShardedIndex::build(dataset)))
        } else {
            Self::Single(Arc::new(TabulationIndex::build(dataset)))
        }
    }

    /// Whether this is the region-sharded representation.
    pub fn is_sharded(&self) -> bool {
        matches!(self, Self::Sharded(_))
    }

    /// Total workers indexed.
    pub fn num_workers(&self) -> usize {
        match self {
            Self::Single(i) => i.num_workers(),
            Self::Sharded(s) => s.num_workers(),
        }
    }

    /// Total establishments indexed.
    pub fn num_establishments(&self) -> usize {
        match self {
            Self::Single(i) => i.num_establishments(),
            Self::Sharded(s) => s.num_establishments(),
        }
    }

    /// Advisory shard-count heuristic; see
    /// [`TabulationIndex::effective_shards`].
    pub fn effective_shards(&self, threads: usize) -> usize {
        match self {
            Self::Single(i) => i.effective_shards(threads),
            Self::Sharded(s) => s.effective_shards(threads),
        }
    }

    /// Evaluate `q_V`; see [`TabulationIndex::marginal_sharded`].
    pub fn marginal_sharded(&self, spec: &MarginalSpec, threads: usize) -> Marginal {
        match self {
            Self::Single(i) => i.marginal_sharded(spec, threads),
            Self::Sharded(s) => s.marginal_sharded(spec, threads),
        }
    }

    /// Evaluate a closure-filtered `q_V`; see
    /// [`TabulationIndex::marginal_filtered_sharded`]. On the sharded
    /// representation the closure sees shard-local worker records.
    pub fn marginal_filtered_sharded<F>(
        &self,
        spec: &MarginalSpec,
        filter: F,
        threads: usize,
    ) -> Marginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        match self {
            Self::Single(i) => i.marginal_filtered_sharded(spec, filter, threads),
            Self::Sharded(s) => s.marginal_filtered_sharded(spec, filter, threads),
        }
    }

    /// Evaluate a declaratively filtered `q_V`; see
    /// [`TabulationIndex::marginal_expr_sharded`].
    pub fn marginal_expr_sharded(
        &self,
        spec: &MarginalSpec,
        expr: &FilterExpr,
        threads: usize,
    ) -> Marginal {
        match self {
            Self::Single(i) => i.marginal_expr_sharded(spec, expr, threads),
            Self::Sharded(s) => s.marginal_expr_sharded(spec, expr, threads),
        }
    }

    /// Tabulate job flows to `after`; see
    /// [`TabulationIndex::flows_sharded`].
    ///
    /// # Panics
    /// Panics if the two quarters use different representations (the
    /// release engine always indexes a panel's quarters the same way) or
    /// their frames disagree.
    pub fn flows_sharded(
        &self,
        after: &DatasetIndex,
        spec: &MarginalSpec,
        threads: usize,
    ) -> FlowMarginal {
        match (self, after) {
            (Self::Single(b), Self::Single(a)) => b.flows_sharded(a, spec, threads),
            (Self::Sharded(b), Self::Sharded(a)) => b.flows_sharded(a, spec, threads),
            _ => panic!("flow tabulation requires both quarters in the same index representation"),
        }
    }

    /// Tabulate closure-filtered job flows to `after`; see
    /// [`TabulationIndex::flows_filtered_sharded`].
    pub fn flows_filtered_sharded<F>(
        &self,
        after: &DatasetIndex,
        spec: &MarginalSpec,
        filter: F,
        threads: usize,
    ) -> FlowMarginal
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        match (self, after) {
            (Self::Single(b), Self::Single(a)) => {
                b.flows_filtered_sharded(a, spec, filter, threads)
            }
            (Self::Sharded(b), Self::Sharded(a)) => {
                b.flows_filtered_sharded(a, spec, filter, threads)
            }
            _ => panic!("flow tabulation requires both quarters in the same index representation"),
        }
    }

    /// Tabulate declaratively filtered job flows to `after`; see
    /// [`TabulationIndex::flows_expr_sharded`].
    pub fn flows_expr_sharded(
        &self,
        after: &DatasetIndex,
        spec: &MarginalSpec,
        expr: &FilterExpr,
        threads: usize,
    ) -> FlowMarginal {
        match (self, after) {
            (Self::Single(b), Self::Single(a)) => b.flows_expr_sharded(a, spec, expr, threads),
            (Self::Sharded(b), Self::Sharded(a)) => b.flows_expr_sharded(a, spec, expr, threads),
            _ => panic!("flow tabulation requires both quarters in the same index representation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{WorkerAttr, WorkplaceAttr};
    use lodes::{DatasetPanel, Generator, GeneratorConfig, PanelConfig, Sex};

    fn dataset() -> Dataset {
        // Multi-state universe so the partition is non-trivial.
        Generator::new(GeneratorConfig::test_small(11)).generate()
    }

    fn specs() -> Vec<MarginalSpec> {
        vec![
            MarginalSpec::new(vec![], vec![]),
            MarginalSpec::new(vec![WorkplaceAttr::State], vec![]),
            MarginalSpec::new(
                vec![WorkplaceAttr::County, WorkplaceAttr::Naics],
                vec![WorkerAttr::Sex, WorkerAttr::Education],
            ),
            MarginalSpec::new(
                vec![WorkplaceAttr::Place, WorkplaceAttr::Ownership],
                vec![
                    WorkerAttr::Sex,
                    WorkerAttr::Age,
                    WorkerAttr::Race,
                    WorkerAttr::Ethnicity,
                    WorkerAttr::Education,
                ],
            ),
        ]
    }

    fn assert_marginals_identical(a: &Marginal, b: &Marginal) {
        assert_eq!(a.num_cells(), b.num_cells());
        for ((ka, sa), (kb, sb)) in a.iter().zip(b.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(sa, sb);
        }
        assert_eq!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn sharded_marginals_are_bit_identical_to_flat_index() {
        let d = dataset();
        let flat = TabulationIndex::build(&d);
        let sharded = RegionShardedIndex::build(&d);
        assert!(sharded.num_shards() > 1, "universe must span states");
        assert_eq!(sharded.num_workers(), flat.num_workers());
        assert_eq!(sharded.num_establishments(), flat.num_establishments());
        for spec in &specs() {
            for threads in [1, 2, 7] {
                assert_marginals_identical(
                    &sharded.marginal_sharded(spec, threads),
                    &flat.marginal_sharded(spec, 1),
                );
            }
        }
    }

    #[test]
    fn sharded_filtered_and_expr_marginals_match_flat_index() {
        let d = dataset();
        let flat = TabulationIndex::build(&d);
        let sharded = RegionShardedIndex::build(&d);
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::Naics],
            vec![WorkerAttr::Age, WorkerAttr::Education],
        );
        for threads in [1, 3] {
            let f = sharded.marginal_filtered_sharded(&spec, |w| w.sex == Sex::Female, threads);
            assert_marginals_identical(
                &f,
                &flat.marginal_filtered_sharded(&spec, |w| w.sex == Sex::Female, 1),
            );
            let expr = FilterExpr::sex(Sex::Female);
            let e = sharded.marginal_expr_sharded(&spec, &expr, threads);
            assert_marginals_identical(&e, &f);
        }
    }

    #[test]
    fn streaming_build_equals_dataset_build() {
        let d = dataset();
        // Stream establishments in dataset order through the builder …
        let built = RegionShardedIndex::build(&d);
        // … and again by hand in *reverse* order: the per-shard CSR
        // layout changes, but tabulations must not.
        let (offsets, order) = d.workers_by_employer();
        let mut builder = RegionIndexBuilder::new(d.geography());
        for (e, wp) in d.workplaces().iter().enumerate().rev() {
            let buf: Vec<Worker> = order[offsets[e] as usize..offsets[e + 1] as usize]
                .iter()
                .map(|&w| *d.worker(WorkerId(w)))
                .collect();
            builder.push_establishment(wp, &buf);
        }
        assert_eq!(builder.num_workers(), d.num_workers());
        assert_eq!(builder.num_establishments(), d.num_workplaces());
        let reversed = builder.finish();
        let spec = MarginalSpec::new(
            vec![WorkplaceAttr::County, WorkplaceAttr::Naics],
            vec![WorkerAttr::Sex],
        );
        assert_marginals_identical(
            &built.marginal_sharded(&spec, 2),
            &reversed.marginal_sharded(&spec, 2),
        );
    }

    #[test]
    fn sharded_flows_are_bit_identical_to_flat_pair() {
        let p = DatasetPanel::generate(
            &GeneratorConfig::test_small(23),
            &PanelConfig {
                quarters: 2,
                growth_sigma: 0.1,
                death_rate: 0.05,
                seed: 7,
            },
        );
        let flat_b = TabulationIndex::build(p.quarter(0));
        let flat_a = TabulationIndex::build(p.quarter(1));
        let shard_b = RegionShardedIndex::build(p.quarter(0));
        let shard_a = RegionShardedIndex::build(p.quarter(1));
        let spec = MarginalSpec::new(vec![WorkplaceAttr::County, WorkplaceAttr::Naics], vec![]);
        let flat = flat_b.flows_sharded(&flat_a, &spec, 1);
        for threads in [1, 2, 5] {
            let sharded = shard_b.flows_sharded(&shard_a, &spec, threads);
            assert_eq!(sharded, flat);
            assert_eq!(sharded.content_digest(), flat.content_digest());
        }
        // Filtered and declarative paths agree too.
        let filtered_flat =
            flat_b.flows_filtered_sharded(&flat_a, &spec, |w| w.sex == Sex::Male, 1);
        let filtered_sharded =
            shard_b.flows_filtered_sharded(&shard_a, &spec, |w| w.sex == Sex::Male, 2);
        assert_eq!(filtered_sharded, filtered_flat);
        let expr = FilterExpr::sex(Sex::Male);
        let expr_sharded = shard_b.flows_expr_sharded(&shard_a, &spec, &expr, 2);
        assert_eq!(expr_sharded, filtered_flat);
    }

    #[test]
    fn dataset_index_dispatch_chooses_representation_and_agrees() {
        let d = dataset();
        let single = DatasetIndex::build_with_threshold(&d, usize::MAX);
        assert!(!single.is_sharded());
        let sharded = DatasetIndex::build_with_threshold(&d, 1);
        assert!(sharded.is_sharded());
        assert_eq!(single.num_workers(), sharded.num_workers());
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![WorkerAttr::Sex]);
        assert_marginals_identical(
            &single.marginal_sharded(&spec, 2),
            &sharded.marginal_sharded(&spec, 2),
        );
    }

    #[test]
    fn single_state_universe_never_auto_shards() {
        let d = Generator::new(GeneratorConfig {
            states: 1,
            ..GeneratorConfig::test_small(3)
        })
        .generate();
        // Even a zero threshold keeps the flat index for one state.
        let idx = DatasetIndex::build_with_threshold(&d, 0);
        assert!(!idx.is_sharded());
    }
}
