//! Place-population stratification of marginal cells.
//!
//! The paper's figures report results both overall and stratified by the
//! resident population of the Census place each cell belongs to (0–100,
//! 100–10k, 10k–100k, 100k+). Any marginal whose spec includes
//! `WorkplaceAttr::Place` can be stratified.

use crate::attr::{Attr, WorkplaceAttr};
use crate::cell::CellKey;
use crate::marginal::Marginal;
use lodes::{Dataset, PlaceId, PlaceSizeClass};
use std::collections::BTreeMap;

/// Group the nonzero cells of `marginal` by the population stratum of their
/// place.
///
/// # Panics
/// Panics if the marginal does not group by `Place`.
pub fn stratify_by_place_size(
    marginal: &Marginal,
    dataset: &Dataset,
) -> BTreeMap<PlaceSizeClass, Vec<CellKey>> {
    let pos = marginal
        .schema()
        .position_of(Attr::Workplace(WorkplaceAttr::Place))
        .expect("marginal must group by place to stratify by place size");
    let mut out: BTreeMap<PlaceSizeClass, Vec<CellKey>> = BTreeMap::new();
    for class in PlaceSizeClass::ALL {
        out.insert(class, Vec::new());
    }
    for (key, _) in marginal.iter() {
        let place = PlaceId(marginal.schema().value_of(key, pos));
        let class = dataset.geography().place(place).size_class();
        out.get_mut(&class)
            .expect("all strata pre-inserted")
            .push(key);
    }
    out
}

/// The stratum of a single cell (requires the marginal to group by place).
pub fn stratum_of_cell(
    marginal: &Marginal,
    dataset: &Dataset,
    key: CellKey,
) -> Option<PlaceSizeClass> {
    let pos = marginal
        .schema()
        .position_of(Attr::Workplace(WorkplaceAttr::Place))?;
    let place = PlaceId(marginal.schema().value_of(key, pos));
    Some(dataset.geography().place(place).size_class())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::MarginalSpec;
    use crate::engine::compute_marginal;
    use lodes::{Generator, GeneratorConfig};

    #[test]
    fn strata_partition_all_cells() {
        let d = Generator::new(GeneratorConfig::test_small(6)).generate();
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Place, WorkplaceAttr::Naics], vec![]);
        let m = compute_marginal(&d, &spec);
        let strata = stratify_by_place_size(&m, &d);
        let total: usize = strata.values().map(|v| v.len()).sum();
        assert_eq!(total, m.num_cells());
        // Every stratum key must be present (possibly empty).
        assert_eq!(strata.len(), 4);
        // Spot-check individual membership.
        for (class, keys) in &strata {
            for &key in keys.iter().take(5) {
                assert_eq!(stratum_of_cell(&m, &d, key), Some(*class));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must group by place")]
    fn stratify_requires_place() {
        let d = Generator::new(GeneratorConfig::test_small(6)).generate();
        let m = compute_marginal(&d, &MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]));
        stratify_by_place_size(&m, &d);
    }
}
