//! The paper's evaluation workloads (Sec 10).
//!
//! * **Workload 1** — the marginal over all establishment characteristics:
//!   place × NAICS sector × ownership (no worker attributes).
//! * **Workload 2** — single queries over all establishment attributes plus
//!   the worker attributes sex and education (individual cells of the
//!   Workload 3 marginal).
//! * **Workload 3** — the full marginal over establishment attributes ×
//!   sex × education.
//! * **Ranking 1** — rank the Workload 1 cells by total count, descending.
//! * **Ranking 2** — rank the Workload 1 cells by their count of female
//!   workers with a bachelor's degree or higher.

use crate::attr::{MarginalSpec, WorkerAttr, WorkplaceAttr};
use crate::filter::FilterExpr;
use lodes::{Education, Sex, Worker};

/// Workload 1: `place × industry × ownership`, no worker attributes.
pub fn workload1() -> MarginalSpec {
    MarginalSpec::new(
        vec![
            WorkplaceAttr::Place,
            WorkplaceAttr::Naics,
            WorkplaceAttr::Ownership,
        ],
        vec![],
    )
}

/// Workload 2/3: `place × industry × ownership × sex × education`.
///
/// Workload 2 treats the cells of this marginal as individual single-count
/// queries; Workload 3 releases the whole marginal.
pub fn workload3() -> MarginalSpec {
    MarginalSpec::new(
        vec![
            WorkplaceAttr::Place,
            WorkplaceAttr::Naics,
            WorkplaceAttr::Ownership,
        ],
        vec![WorkerAttr::Sex, WorkerAttr::Education],
    )
}

/// Alias for [`workload3`]: Workload 2 uses the same marginal, queried one
/// cell at a time.
pub fn workload2() -> MarginalSpec {
    workload3()
}

/// Worker filter for Ranking 2: female workers with a bachelor's degree or
/// higher.
///
/// This is the raw-closure form; release pipelines should prefer
/// [`ranking2_expr`], whose identity is serializable and
/// provenance-checkable. The closure survives as the reference the
/// equivalence tests compare the AST against.
pub fn ranking2_filter(worker: &Worker) -> bool {
    worker.sex == Sex::Female && worker.education == Education::BachelorOrHigher
}

/// Declarative form of [`ranking2_filter`]: the same population as a
/// serializable [`FilterExpr`] with a stable
/// [`FilterId`](crate::filter::FilterId), so Ranking 2 releases can share
/// tabulations across construction sites and verify filter provenance
/// across season resumes.
pub fn ranking2_expr() -> FilterExpr {
    FilterExpr::sex(Sex::Female).and(FilterExpr::education_at_least(Education::BachelorOrHigher))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{compute_marginal, compute_marginal_filtered};
    use lodes::{Generator, GeneratorConfig};

    #[test]
    fn workload_specs() {
        assert_eq!(workload1().name(), "place x naics x ownership");
        assert!(!workload1().has_worker_attrs());
        assert_eq!(
            workload3().name(),
            "place x naics x ownership x sex x education"
        );
        assert_eq!(workload3().worker_domain_size(), 8);
        assert_eq!(workload2(), workload3());
    }

    #[test]
    fn ranking2_is_a_slice_of_workload3() {
        let d = Generator::new(GeneratorConfig::test_small(8)).generate();
        let w3 = compute_marginal(&d, &workload3());
        // Slice: sex = Female(1), education = BachelorOrHigher(3).
        let sliced = w3.slice_worker_attrs(&[(WorkerAttr::Sex, 1), (WorkerAttr::Education, 3)]);
        let filtered = compute_marginal_filtered(&d, &workload1(), ranking2_filter);
        // Both routes must agree cell-by-cell.
        assert_eq!(sliced.len(), filtered.num_cells());
        for (key, stats) in filtered.iter() {
            assert_eq!(sliced.get(&key).copied(), Some(stats.count), "cell {key:?}");
        }
    }

    #[test]
    fn ranking2_expr_matches_ranking2_filter() {
        let d = Generator::new(GeneratorConfig::test_small(8)).generate();
        let via_closure = compute_marginal_filtered(&d, &workload1(), ranking2_filter);
        let via_expr = crate::engine::compute_marginal_expr(&d, &workload1(), &ranking2_expr());
        assert_eq!(via_expr.num_cells(), via_closure.num_cells());
        for ((ka, sa), (kb, sb)) in via_expr.iter().zip(via_closure.iter()) {
            assert_eq!((ka, sa), (kb, sb));
        }
        // Two separately constructed expressions share one identity.
        assert_eq!(ranking2_expr().id(), ranking2_expr().id());
    }
}
