//! A two-season agency over one confidential snapshot: global cap,
//! cross-season truth sharing, kill/resume with zero re-tabulation.
//!
//! A statistical agency runs a recurring release *program*, not one
//! season. This example drives the `AgencyStore` end to end and asserts
//! the three guarantees the agency layer adds over a lone `SeasonStore`:
//!
//! 1. **Global cap, enforced up front** — a season whose budget would
//!    overspend the agency's ε cap is refused before any directory is
//!    created or any record is scanned;
//! 2. **Cross-season truth sharing** — the second season re-publishes a
//!    marginal the first season already tabulated, and its truth is
//!    served digest-verified from the persistent truth store with zero
//!    recomputation;
//! 3. **Kill/resume, still zero recomputation** — a season killed partway
//!    resumes bit-identically (no ε re-spent), and even the resumed
//!    requests' truths come from the truth store.
//!
//! Run: `cargo run --release --example agency_seasons`
//! (CI runs this as the agency smoke step; every `assert!` is a gate.)

use eree::prelude::*;
use std::fs;
use std::path::Path;

fn county() -> MarginalSpec {
    MarginalSpec::new(vec![WorkplaceAttr::County], vec![])
}

/// Season A: the "annual" program.
fn annual_plan() -> Vec<ReleaseRequest> {
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .describe("A1: place x naics x ownership")
            .seed(1),
        ReleaseRequest::marginal(county())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("A2: county marginal")
            .seed(2),
    ]
}

/// Season B: re-releases sharing both of season A's tabulations.
fn followup_plan() -> Vec<ReleaseRequest> {
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("B1: workload1 re-release (shared truth)")
            .seed(3),
        ReleaseRequest::marginal(county())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("B2: county re-release (shared truth)")
            .seed(4),
    ]
}

fn artifact_bytes(season_dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<_> = fs::read_dir(season_dir.join("artifacts"))
        .expect("artifacts dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read(&p).expect("artifact bytes"),
            )
        })
        .collect()
}

fn main() {
    let dataset = Generator::new(GeneratorConfig::test_small(42)).generate();
    let cap = PrivacyParams::pure(0.1, 5.0);

    let base = std::env::temp_dir().join("eree-agency-seasons");
    let oneshot_dir = base.join("oneshot");
    let killed_dir = base.join("killed");
    let _ = fs::remove_dir_all(&base);

    // --- Reference: both seasons, uninterrupted. ---
    let mut oneshot = AgencyStore::create(&oneshot_dir, cap).unwrap();
    oneshot
        .create_season("annual", PrivacyParams::pure(0.1, 3.0))
        .unwrap();
    oneshot
        .create_season("followup", PrivacyParams::pure(0.1, 2.0))
        .unwrap();
    let a = oneshot
        .run_season("annual", &dataset, &annual_plan())
        .unwrap();
    let b = oneshot
        .run_season("followup", &dataset, &followup_plan())
        .unwrap();
    println!(
        "one-shot:   annual tabulated {} truths; followup tabulated {} ({} from truth store)",
        a.tabulations_computed, b.tabulations_computed, b.tabulation_disk_hits
    );
    // Gate 2: the sibling season recomputed nothing.
    assert_eq!(a.tabulations_computed, 2);
    assert_eq!(b.tabulations_computed, 0, "sibling season re-tabulated");
    assert_eq!(b.tabulation_disk_hits, 2);

    // Gate 1: the cap (5.0) is fully reserved; another season is refused
    // before anything touches disk or data.
    match oneshot.create_season("greedy", PrivacyParams::pure(0.1, 0.5)) {
        Err(StoreError::AgencyBudget { season, source }) => {
            println!("cap:        season `{season}` refused up front — {source}")
        }
        other => panic!("over-cap season must be refused, got {other:?}"),
    }
    assert!(!oneshot_dir.join("seasons").join("greedy").exists());

    // --- The same program, with the followup season killed partway. ---
    let mut agency = AgencyStore::create(&killed_dir, cap).unwrap();
    agency
        .create_season("annual", PrivacyParams::pure(0.1, 3.0))
        .unwrap();
    agency
        .create_season("followup", PrivacyParams::pure(0.1, 2.0))
        .unwrap();
    agency
        .run_season("annual", &dataset, &annual_plan())
        .unwrap();
    let partial = agency
        .run_season("followup", &dataset, &followup_plan()[..1])
        .unwrap();
    println!(
        "killed:     followup persisted {} of {} releases — process dies here",
        partial.executed,
        followup_plan().len()
    );
    drop(agency); // the kill: only on-disk state survives

    // --- A fresh process resumes the whole agency. ---
    let mut agency = AgencyStore::open(&killed_dir).unwrap();
    let resumed = agency
        .run_season("followup", &dataset, &followup_plan())
        .unwrap();
    println!(
        "resumed:    skipped {}, executed {}, {} tabulations computed ({} from truth store)",
        resumed.resumed_from,
        resumed.executed,
        resumed.tabulations_computed,
        resumed.tabulation_disk_hits
    );
    // Gate 3: resume skipped the persisted release, executed the rest,
    // and recomputed *nothing* — every truth came from the store.
    assert_eq!(resumed.resumed_from, 1);
    assert_eq!(resumed.executed, 1);
    assert_eq!(resumed.tabulations_computed, 0, "resume re-tabulated");
    assert_eq!(resumed.tabulation_disk_hits, 1);

    // ε was never re-spent, and the artifacts are byte-identical to the
    // uninterrupted run's, season by season.
    for name in ["annual", "followup"] {
        let season = agency.open_season(name).unwrap();
        assert!(season.ledger().remaining_epsilon() < 1e-9);
        let x = artifact_bytes(&oneshot_dir.join("seasons").join(name));
        let y = artifact_bytes(&killed_dir.join("seasons").join(name));
        assert_eq!(x, y, "season `{name}` artifacts must be byte-identical");
    }
    println!("verified:   resumed artifacts byte-identical; no eps re-spent");

    // A tampered season ledger refuses the whole agency. (Drop the live
    // handle first: its write lease would otherwise refuse the reopen
    // before verification even looks at the ledgers.)
    drop(agency);
    let ledger_path = killed_dir
        .join("seasons")
        .join("annual")
        .join("ledger.json");
    let tampered = fs::read_to_string(&ledger_path)
        .unwrap()
        .replace("\"spent_epsilon\": 3.0", "\"spent_epsilon\": 0.5");
    fs::write(&ledger_path, tampered).unwrap();
    match AgencyStore::open(&killed_dir) {
        Err(e) => println!("tampered:   agency refused to open — {e}"),
        Ok(_) => panic!("tampered season ledger must refuse the agency"),
    }

    fs::remove_dir_all(&base).unwrap();
}
