//! Area comparisons and workforce-shape release — two further products
//! built on the same private-release machinery.
//!
//! 1. **Area comparison** (OnTheMap, Sec 3.2): rank user-defined areas
//!    (sets of places) by job count. Disjoint areas partition
//!    establishments, so one ε covers the whole comparison (Thm 7.4).
//! 2. **Shape release**: publish the sex × education composition of each
//!    place × industry × ownership cell under weak (α,ε)-ER-EE privacy —
//!    the quantity Definition 4.3 protects, released at a controlled
//!    privacy cost instead of leaked exactly (as SDL does).
//!
//! Run: `cargo run --release --example area_shape_release`

use eree::prelude::*;
use eree_core::{CellQuery, CountMechanism, SmoothLaplaceMechanism};
use lodes::PlaceId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabulate::{area_comparison, AreaSelection};

fn main() {
    let dataset = Generator::new(GeneratorConfig::test_small(909)).generate();

    // ---- 1. Private area comparison -----------------------------------
    // Partition the first 12 places into three ad-hoc "regions".
    let areas = vec![
        AreaSelection::new("North corridor", (0..4).map(PlaceId)),
        AreaSelection::new("Metro core", (4..8).map(PlaceId)),
        AreaSelection::new("South valley", (8..12).map(PlaceId)),
    ];
    let stats = area_comparison(&dataset, &areas).expect("areas are disjoint");

    let mech = SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).expect("valid parameters");
    let mut rng = StdRng::seed_from_u64(5);
    println!("Area comparison at (alpha=0.1, eps=2, delta=.05) — one eps for the whole set:\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "area", "true jobs", "released", "E|noise|"
    );
    for (name, cell) in &stats {
        let q = CellQuery::from_stats(cell);
        let released = mech.release(&q, &mut rng);
        println!(
            "{:<16} {:>10} {:>12.1} {:>12.1}",
            name,
            cell.count,
            released,
            mech.expected_l1(&q).unwrap()
        );
    }

    // ---- 2. Shape release ----------------------------------------------
    let truth = compute_marginal(&dataset, &workload3());
    let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 16.0, 0.05));
    let artifact = engine
        .execute_precomputed(
            &truth,
            &ReleaseRequest::shapes(workload3())
                .mechanism(MechanismKind::SmoothLaplace)
                .budget(PrivacyParams::approximate(0.1, 16.0, 0.05))
                .seed(7),
        )
        .expect("valid parameters");
    let shapes = artifact.shapes().expect("shapes payload");

    // Show the largest cell's released education mix for female workers.
    let biggest = shapes
        .iter()
        .max_by(|a, b| a.total.partial_cmp(&b.total).unwrap())
        .expect("nonempty");
    println!(
        "\nShape release (weak privacy, total eps=16 over the sex x education domain):\n\
         largest place x industry x ownership cell — released total {:.0} workers",
        biggest.total
    );
    let labels = ["<HS", "HS", "some college", "BA+"];
    println!("{:<14} {:>8} {:>8}", "education", "male", "female");
    for (i, label) in labels.iter().enumerate() {
        println!(
            "{:<14} {:>7.1}% {:>7.1}%",
            label,
            biggest.fractions[i] * 100.0,
            biggest.fractions[4 + i] * 100.0
        );
    }
    println!(
        "\nEvery number above carries the weak (alpha, eps)-ER-EE guarantee; the SDL \
         release\nof the same table reveals these shares exactly for single-establishment \
         cells\n(see the sdl_attacks example)."
    );
}
