//! Multi-release budget planning with the ledger-enforced release engine.
//!
//! A statistical agency publishes many tabulations from the same
//! confidential snapshot. Sequential composition (Thm 7.3) makes the
//! losses add; parallel composition (Thms 7.4/7.5) makes some of them
//! free. This example submits a year of releases to one
//! [`ReleaseEngine`] as a batch: every request is validated against the
//! remaining annual budget *before* any noise is drawn, over-budget
//! requests are refused without spending, and the engine's ledger is the
//! audit trail.
//!
//! Run: `cargo run --release --example budget_planning`

use eree::prelude::*;
use tabulate::{compute_marginal, MarginalSpec};

fn main() {
    let dataset = Generator::new(GeneratorConfig::test_small(77)).generate();

    // Annual budget: (alpha = 0.1, eps = 8, delta = 0.05).
    let annual = PrivacyParams::approximate(0.1, 8.0, 0.05);
    let mut engine = ReleaseEngine::new(annual);
    println!(
        "annual budget: alpha={}, eps={}, delta={}\n",
        annual.alpha, annual.epsilon, annual.delta
    );

    let spec_county = MarginalSpec::new(vec![WorkplaceAttr::County], vec![]);
    let batch = vec![
        // Q1 — Workload 1 (workplace-only marginal): the cells partition
        // establishments, so the WHOLE marginal costs one epsilon
        // (Thm 7.4), regardless of its ~thousands of cells.
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 2.0, 0.01))
            .describe("Q1: place x naics x ownership")
            .seed(1),
        // Q2 — Workload 3 (adds sex x education): under weak privacy the
        // worker cells compose sequentially: multiplier d = 8, so the
        // total charge is 8 x the per-cell budget. Log-Laplace, because
        // the split per-cell budget (eps/8 = 0.5) is below the smooth
        // mechanisms' validity frontiers.
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 4.0))
            .describe("Q2: ... x sex x education")
            .seed(2),
        // Q3 — a county marginal, but the budget is nearly spent: this
        // request overdraws the remaining epsilon and must be refused
        // WITHOUT consuming anything.
        ReleaseRequest::marginal(spec_county.clone())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 4.0, 0.004))
            .describe("Q3: county marginal")
            .seed(3),
        // Q3 again at a reduced epsilon that fits the remainder.
        ReleaseRequest::marginal(spec_county.clone())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 2.0, 0.005))
            .describe("Q3: county marginal (reduced eps)")
            .seed(3),
    ];

    for (request, outcome) in batch.iter().zip(engine.execute_all(&dataset, &batch)) {
        match outcome {
            Ok(artifact) => println!(
                "{:<38} charged eps={:<4} (per-cell {} x multiplier {}) over {} cells",
                artifact.request.description,
                artifact.cost.epsilon,
                artifact.cost.per_cell_epsilon,
                artifact.cost.multiplier,
                artifact.cells().map_or(0, |c| c.len()),
            ),
            Err(e) => println!("{:<38} REFUSED: {e}", request.description()),
        }
    }

    println!(
        "\nremaining budget: eps={:.2}, delta={:.3}",
        engine.ledger().remaining_epsilon(),
        engine.ledger().remaining_delta()
    );
    println!("ledger entries:");
    for entry in engine.ledger().entries() {
        println!(
            "  - {:<38} eps={:<5} delta={}",
            entry.description, entry.epsilon, entry.delta
        );
    }

    // Context: Thm 7.4's saving — the Q1 charge covered this many cells.
    println!(
        "\n(Q1's one-epsilon charge covered {} cells — Thm 7.4 parallel composition.)",
        compute_marginal(&dataset, &workload1()).num_cells()
    );
}
