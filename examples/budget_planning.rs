//! Multi-release budget planning with the privacy ledger.
//!
//! A statistical agency publishes many tabulations from the same
//! confidential snapshot. Sequential composition (Thm 7.3) makes the
//! losses add; parallel composition (Thms 7.4/7.5) makes some of them
//! free. This example walks a year of releases through the
//! [`eree_core::Ledger`] and shows where each theorem saves budget.
//!
//! Run: `cargo run --release --example budget_planning`

use eree::prelude::*;
use eree_core::neighbors::NeighborKind;
use tabulate::MarginalSpec;

fn main() {
    let dataset = Generator::new(GeneratorConfig::test_small(77)).generate();

    // Annual budget: (alpha = 0.1, eps = 8, delta = 0.05).
    let annual = PrivacyParams::approximate(0.1, 8.0, 0.05);
    let mut ledger = Ledger::new(annual);
    println!(
        "annual budget: alpha={}, eps={}, delta={}\n",
        annual.alpha, annual.epsilon, annual.delta
    );

    // Release 1 — Workload 1 (workplace-only marginal): the cells
    // partition establishments, so the WHOLE marginal costs one epsilon
    // (Thm 7.4), regardless of its ~thousands of cells.
    let spec1 = workload1();
    let per_cell = PrivacyParams::approximate(0.1, 2.0, 0.01);
    let cost1 = ReleaseCost::for_marginal(&spec1, &per_cell, NeighborKind::Strong);
    ledger
        .charge("Q1: place x naics x ownership", &per_cell, &cost1)
        .unwrap();
    println!(
        "Q1 {} ({} cells): charged eps={} (multiplier {} — Thm 7.4 parallel composition)",
        spec1.name(),
        compute_marginal(&dataset, &spec1).num_cells(),
        cost1.epsilon,
        cost1.multiplier
    );

    // Release 2 — Workload 3 (adds sex x education): under weak privacy
    // the worker cells compose sequentially: multiplier d = 8.
    let spec3 = workload3();
    let per_cell3 = PrivacyParams::approximate(0.1, 0.5, 0.004);
    let cost3 = ReleaseCost::for_marginal(&spec3, &per_cell3, NeighborKind::Weak);
    ledger
        .charge("Q2: ... x sex x education", &per_cell3, &cost3)
        .unwrap();
    println!(
        "Q2 {}: charged eps={} (per-cell {} x multiplier {} — weak sequential composition)",
        spec3.name(),
        cost3.epsilon,
        cost3.per_cell_epsilon,
        cost3.multiplier
    );

    // Release 3 — a county-level marginal for a different quarter... the
    // budget is nearly spent; an over-budget request is refused.
    let spec_county = MarginalSpec::new(vec![WorkplaceAttr::County], vec![]);
    let per_cell_c = PrivacyParams::approximate(0.1, 4.0, 0.04);
    let cost_c = ReleaseCost::for_marginal(&spec_county, &per_cell_c, NeighborKind::Strong);
    match ledger.charge("Q3: county marginal", &per_cell_c, &cost_c) {
        Ok(()) => println!("Q3 charged"),
        Err(e) => println!("Q3 refused: {e}"),
    }

    // A smaller request fits (remaining after Q1+Q2: eps 2.0, delta 0.008).
    let per_cell_c = PrivacyParams::approximate(0.1, 2.0, 0.005);
    let cost_c = ReleaseCost::for_marginal(&spec_county, &per_cell_c, NeighborKind::Strong);
    ledger
        .charge("Q3: county marginal (reduced eps)", &per_cell_c, &cost_c)
        .unwrap();
    println!(
        "Q3 charged at reduced eps={}; remaining budget: eps={:.2}, delta={:.3}",
        cost_c.epsilon,
        ledger.remaining_epsilon(),
        ledger.remaining_delta()
    );

    println!("\nledger entries:");
    for entry in ledger.entries() {
        println!(
            "  - {:<38} eps={:<5} delta={}",
            entry.description, entry.epsilon, entry.delta
        );
    }
}
