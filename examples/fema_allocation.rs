//! Resource allocation under noisy counts — the FEMA scenario of Sec 3.2.
//!
//! FEMA's per-capita indicator (about $3.50 per person at the time of the
//! paper) converts count errors into misallocated disaster-assistance
//! dollars: if the threshold were applied to *job* counts, every job of
//! error in a released tabulation carries a net social cost of ~$3.50.
//! This example prices the L1 error of each release method in those terms
//! and shows how the cost falls with the privacy-loss budget.
//!
//! Run: `cargo run --release --example fema_allocation`

use eree::prelude::*;

const COST_PER_JOB: f64 = 3.50;

fn main() {
    let dataset = Generator::new(GeneratorConfig::test_small(99)).generate();
    let spec = workload1();
    let truth = compute_marginal(&dataset, &spec);
    println!(
        "Pricing count errors at ${COST_PER_JOB:.2}/job over {} place x industry x ownership cells\n",
        truth.num_cells()
    );

    // The SDL baseline's social cost.
    let sdl = SdlPublisher::new(&dataset, SdlConfig::default()).publish(&dataset, &spec);
    println!("{:<28} {:>14}", "method", "misallocation");
    println!(
        "{:<28} {:>13.0}$",
        "SDL (input noise infusion)",
        sdl.l1_error() * COST_PER_JOB
    );

    // Formally private releases across the epsilon grid, every one
    // budget-checked by the engine (each grid point is an independent
    // guarantee statement, so each gets its own single-release ledger).
    for &epsilon in &[0.5, 1.0, 2.0, 4.0] {
        for mechanism in [MechanismKind::SmoothGamma, MechanismKind::SmoothLaplace] {
            let budget = match mechanism {
                MechanismKind::SmoothLaplace => PrivacyParams::approximate(0.1, epsilon, 0.05),
                _ => PrivacyParams::pure(0.1, epsilon),
            };
            let label = format!("{} (eps={epsilon})", mechanism.label());
            let mut engine = ReleaseEngine::new(budget);
            let request = ReleaseRequest::marginal(spec.clone())
                .mechanism(mechanism)
                .budget(budget)
                .seed(7);
            match engine.execute_precomputed(&truth, &request) {
                Ok(artifact) => println!(
                    "{:<28} {:>13.0}$",
                    label,
                    artifact.l1_error_against(&truth).unwrap() * COST_PER_JOB
                ),
                Err(_) => println!("{label:<28} {:>14}", "(invalid params)"),
            }
        }
    }

    println!(
        "\nPositive errors raise the hypothetical damage threshold; negative errors \
         lower it.\nEither direction misallocates relative to the program's intent, \
         which is why the\npaper measures utility in L1."
    );
}
