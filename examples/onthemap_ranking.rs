//! Area-comparison ranking — the OnTheMap scenario of Sec 3.2.
//!
//! The OnTheMap web tool lets users rank areas (e.g. Census places within
//! a state) by work-area job count, for decisions like where to open a new
//! establishment. This example ranks places by total employment from (a)
//! the true counts, (b) the SDL release, and (c) formally private
//! releases, and reports how well each noisy ranking preserves the SDL
//! ordering (the paper's Ranking 1 protocol) and the true ordering.
//!
//! Run: `cargo run --release --example onthemap_ranking`

use eree::prelude::*;
use eval::metrics::spearman;

fn main() {
    let dataset = Generator::new(GeneratorConfig::test_small(512)).generate();
    // Rank places by total employment: the place-only marginal.
    let spec = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]);
    let truth = compute_marginal(&dataset, &spec);
    let keys: Vec<CellKey> = truth.iter().map(|(k, _)| k).collect();
    let true_counts: Vec<f64> = truth.iter().map(|(_, s)| s.count as f64).collect();

    let sdl = SdlPublisher::new(&dataset, SdlConfig::default()).publish(&dataset, &spec);
    let sdl_counts: Vec<f64> = keys
        .iter()
        .map(|k| sdl.published.get(k).copied().unwrap_or(0.0))
        .collect();

    println!(
        "Ranking {} places by job count (true top-5 places shown first)\n",
        keys.len()
    );
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| true_counts[b].partial_cmp(&true_counts[a]).unwrap());
    for (rank, &i) in order.iter().take(5).enumerate() {
        let place = truth.schema().value_of(keys[i], 0);
        println!(
            "  #{:<2} place {:>4}: {:>8} jobs (SDL published {:>9.1})",
            rank + 1,
            place,
            true_counts[i],
            sdl_counts[i]
        );
    }

    println!(
        "\n{:<24} {:>12} {:>12}",
        "method", "rho vs SDL", "rho vs truth"
    );
    let rho_sdl_truth = spearman(&sdl_counts, &true_counts).unwrap();
    println!("{:<24} {:>12} {:>12.4}", "SDL", "1.0000", rho_sdl_truth);

    for &epsilon in &[0.25, 1.0, 4.0] {
        let budget = PrivacyParams::approximate(0.1, epsilon, 0.05);
        let mut engine = ReleaseEngine::new(budget);
        let outcome = engine.execute_precomputed(
            &truth,
            &ReleaseRequest::marginal(spec.clone())
                .mechanism(MechanismKind::SmoothLaplace)
                .budget(budget)
                .seed(11),
        );
        let Ok(artifact) = outcome else {
            println!("Smooth Laplace eps={epsilon:<6} (invalid parameters)");
            continue;
        };
        let published = artifact.cells().expect("marginal payload");
        let ours: Vec<f64> = keys
            .iter()
            .map(|k| published.get(k).copied().unwrap_or(0.0))
            .collect();
        println!(
            "{:<24} {:>12.4} {:>12.4}",
            format!("Smooth Laplace eps={epsilon}"),
            spearman(&ours, &sdl_counts).unwrap(),
            spearman(&ours, &true_counts).unwrap()
        );
    }

    // OnTheMap also answers *sub-population* rankings ("where do female
    // workers with a bachelor's degree work?"). The population is a
    // declarative FilterExpr, so the engine tabulates the filtered truth
    // itself and the artifact's provenance records exactly which
    // sub-population was ranked.
    let filter = ranking2_expr();
    let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));
    let artifact = engine
        .execute(
            &dataset,
            &ReleaseRequest::marginal(spec.clone())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 4.0))
                .filter_expr(filter.clone())
                .seed(11),
        )
        .expect("valid filtered request");
    let filtered_truth = compute_marginal_expr(&dataset, &spec, &filter);
    let f_keys: Vec<CellKey> = filtered_truth.iter().map(|(k, _)| k).collect();
    let f_true: Vec<f64> = filtered_truth.iter().map(|(_, s)| s.count as f64).collect();
    let published = artifact.cells().expect("marginal payload");
    let f_ours: Vec<f64> = f_keys
        .iter()
        .map(|k| published.get(k).copied().unwrap_or(0.0))
        .collect();
    println!(
        "\n{:<24} {:>12} {:>12.4}   (filter digest {})",
        "female x bachelor's+",
        "-",
        spearman(&f_ours, &f_true).unwrap(),
        artifact.request.filter_id().expect("AST-filtered request"),
    );

    println!(
        "\nAt eps >= 1 the formally private ranking tracks the published SDL ordering \
         almost\nperfectly (the paper's Finding: counts can be used for ranking with \
         high accuracy\nfor eps >= 1)."
    );
}
