//! A killable, resumable publication season.
//!
//! A statistical agency's season is an ordered plan of releases spending
//! one season-long `(α, ε, δ)` budget (sequential composition, Thm 7.3).
//! At national scale the season runs for hours, so the process executing
//! it will eventually die partway. This example persists every release
//! through a `SeasonStore` and shows that:
//!
//! 1. a run killed after the first two releases resumes from disk,
//!    executing only the remainder — no ε is ever re-spent;
//! 2. the resumed season's artifacts are byte-for-byte identical to an
//!    uninterrupted run's (noise streams derive from `(seed, cell key)`);
//! 3. a tampered ledger snapshot refuses to resume at all.
//!
//! Run: `cargo run --release --example publication_season`

use eree::prelude::*;
use std::fs;
use std::path::Path;

fn season_plan() -> Vec<ReleaseRequest> {
    let county = MarginalSpec::new(vec![WorkplaceAttr::County], vec![]);
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .describe("Q1: place x naics x ownership")
            .seed(1),
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("Q2: same marginal, tighter re-release")
            .seed(2),
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 8.0))
            .describe("Q3: ... x sex x education")
            .seed(3),
        ReleaseRequest::marginal(county)
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 1.0, 0.05))
            .describe("Q4: county marginal")
            .seed(4),
    ]
}

fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<_> = fs::read_dir(dir.join("artifacts"))
        .expect("artifacts dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read(&p).expect("artifact bytes"),
            )
        })
        .collect()
}

fn main() {
    let dataset = Generator::new(GeneratorConfig::test_small(77)).generate();
    let budget = PrivacyParams::approximate(0.1, 12.0, 0.05);
    let plan = season_plan();

    let base = std::env::temp_dir().join("eree-publication-season");
    let interrupted_dir = base.join("interrupted");
    let oneshot_dir = base.join("oneshot");
    let _ = fs::remove_dir_all(&base);

    // --- Reference: the season, uninterrupted. ---
    let mut oneshot = SeasonStore::create(&oneshot_dir, budget).unwrap();
    let report = oneshot.run(&dataset, &plan).unwrap();
    println!(
        "one-shot run:  executed {} releases, {} tabulations ({} served from cache)",
        report.executed, report.tabulations_computed, report.tabulation_hits
    );

    // --- The same season, killed after two releases. ---
    let mut store = SeasonStore::create(&interrupted_dir, budget).unwrap();
    store.run(&dataset, &plan[..2]).unwrap();
    println!(
        "interrupted:   {} of {} releases persisted, eps spent {:.2} — process dies here",
        store.completed(),
        plan.len(),
        store.ledger().spent_epsilon()
    );
    drop(store); // the kill: only the on-disk state survives

    // --- A fresh process resumes from disk. ---
    let mut store = SeasonStore::open(&interrupted_dir).unwrap();
    let report = store.run(&dataset, &plan).unwrap();
    println!(
        "resumed:       skipped {} persisted releases, executed the remaining {}",
        report.resumed_from, report.executed
    );
    println!(
        "               eps spent {:.2} of {:.2} (nothing re-spent), remaining {:.2}",
        store.ledger().spent_epsilon(),
        budget.epsilon,
        store.ledger().remaining_epsilon()
    );

    // --- The interrupted-and-resumed season is bit-identical. ---
    let a = artifact_bytes(&oneshot_dir);
    let b = artifact_bytes(&interrupted_dir);
    assert_eq!(a, b, "resumed artifacts must be byte-identical");
    println!(
        "verified:      all {} artifact files byte-identical to the one-shot run",
        a.len()
    );

    // --- A tampered ledger cannot resume. ---
    let ledger_path = interrupted_dir.join("ledger.json");
    let tampered = fs::read_to_string(&ledger_path)
        .unwrap()
        .replace("\"spent_epsilon\": 12.0", "\"spent_epsilon\": 1.0");
    fs::write(&ledger_path, tampered).unwrap();
    match SeasonStore::open(&interrupted_dir) {
        Err(e) => println!("tampered:      refused to resume — {e}"),
        Ok(_) => panic!("tampered ledger must not open"),
    }

    fs::remove_dir_all(&base).unwrap();
}
