//! Quickstart: generate a synthetic ER-EE universe, release a tabulation
//! three ways (exact, SDL, formally private), and compare.
//!
//! Run: `cargo run --release --example quickstart`

use eree::prelude::*;

fn main() {
    // 1. A synthetic LODES-style universe (seeded: fully reproducible).
    let dataset = Generator::new(GeneratorConfig::test_small(2017)).generate();
    let stats = DatasetStats::compute(&dataset);
    println!("universe: {}", stats.summary());

    // 2. The paper's Workload 1: employment counts by Census place x
    //    NAICS sector x ownership.
    let spec = workload1();
    let truth = compute_marginal(&dataset, &spec);
    println!(
        "\nWorkload 1 ({}): {} nonzero cells, {} total jobs",
        spec.name(),
        truth.num_cells(),
        truth.total()
    );

    // 3a. Current practice: input noise infusion (no provable guarantee).
    let sdl = SdlPublisher::new(&dataset, SdlConfig::default());
    let sdl_release = sdl.publish(&dataset, &spec);
    println!(
        "SDL release:            total L1 error {:>10.1} (mean {:>6.2}/cell)",
        sdl_release.l1_error(),
        sdl_release.mean_l1_error()
    );

    // 3b. Provable privacy: the three mechanisms at the paper's baseline
    //     (alpha = 0.1, epsilon = 2; delta = 0.05 for Smooth Laplace).
    for (mechanism, budget) in [
        (MechanismKind::LogLaplace, PrivacyParams::pure(0.1, 2.0)),
        (MechanismKind::SmoothGamma, PrivacyParams::pure(0.1, 2.0)),
        (
            MechanismKind::SmoothLaplace,
            PrivacyParams::approximate(0.1, 2.0, 0.05),
        ),
    ] {
        let release = release_marginal(
            &dataset,
            &spec,
            &ReleaseConfig {
                mechanism,
                budget,
                seed: 42,
            },
        )
        .expect("valid parameters");
        println!(
            "{:<22} total L1 error {:>10.1} (mean {:>6.2}/cell)  [{} regime, eps={} alpha={}]",
            format!("{}:", release.mechanism_name),
            release.l1_error(),
            release.mean_l1_error(),
            match release.regime {
                eree_core::neighbors::NeighborKind::Strong => "strong",
                eree_core::neighbors::NeighborKind::Weak => "weak",
            },
            budget.epsilon,
            budget.alpha,
        );
    }

    println!(
        "\nThe formally private releases carry provable (alpha, epsilon)-ER-EE \
         guarantees;\nthe SDL release does not (see the sdl_attacks example)."
    );
}
