//! Quickstart: generate a synthetic ER-EE universe, release a tabulation
//! three ways (exact, SDL, formally private), and compare.
//!
//! Formally private releases flow through the [`ReleaseEngine`]: one
//! ledger governs the whole session, every request is budget-checked
//! before sampling, and each release comes back as a durable
//! [`ReleaseArtifact`].
//!
//! Run: `cargo run --release --example quickstart`

use eree::prelude::*;
use tabulate::compute_marginal;

fn main() {
    // 1. A synthetic LODES-style universe (seeded: fully reproducible).
    let dataset = Generator::new(GeneratorConfig::test_small(2017)).generate();
    let stats = DatasetStats::compute(&dataset);
    println!("universe: {}", stats.summary());

    // 2. The paper's Workload 1: employment counts by Census place x
    //    NAICS sector x ownership.
    let spec = workload1();
    let truth = compute_marginal(&dataset, &spec);
    println!(
        "\nWorkload 1 ({}): {} nonzero cells, {} total jobs",
        spec.name(),
        truth.num_cells(),
        truth.total()
    );

    // 3a. Current practice: input noise infusion (no provable guarantee).
    let sdl = SdlPublisher::new(&dataset, SdlConfig::default());
    let sdl_release = sdl.publish(&dataset, &spec);
    println!(
        "SDL release:            total L1 error {:>10.1} (mean {:>6.2}/cell)",
        sdl_release.l1_error(),
        sdl_release.mean_l1_error()
    );

    // 3b. Provable privacy: the three mechanisms at the paper's baseline
    //     (alpha = 0.1, epsilon = 2; delta = 0.05 for Smooth Laplace),
    //     executed as one batch under a single session ledger.
    let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 6.0, 0.05));
    let batch = vec![
        ReleaseRequest::marginal(spec.clone())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(42),
        ReleaseRequest::marginal(spec.clone())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(42),
        ReleaseRequest::marginal(spec.clone())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 2.0, 0.05))
            .seed(42),
    ];
    for outcome in engine.execute_all(&dataset, &batch) {
        let artifact = outcome.expect("valid parameters and sufficient budget");
        let l1 = artifact
            .l1_error_against(&truth)
            .expect("complete cell release");
        println!(
            "{:<22} total L1 error {:>10.1} (mean {:>6.2}/cell)  [{} regime, eps={} alpha={}]",
            format!("{}:", artifact.mechanism_name),
            l1,
            l1 / truth.num_cells() as f64,
            match artifact.regime {
                eree_core::neighbors::NeighborKind::Strong => "strong",
                eree_core::neighbors::NeighborKind::Weak => "weak",
            },
            artifact.cost.epsilon,
            artifact.request.budget.alpha,
        );
    }
    println!(
        "session ledger: spent eps={:.1}, remaining eps={:.1}",
        engine.ledger().budget().epsilon - engine.ledger().remaining_epsilon(),
        engine.ledger().remaining_epsilon()
    );

    // 4. A sub-population release: filters are declarative expressions
    //    (serializable, with a stable content digest), so the artifact
    //    records exactly which population was tabulated and structurally
    //    equal filters share one tabulation.
    let filter = ranking2_expr(); // female x bachelor's degree or higher
    let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
    let artifact = engine
        .execute(
            &dataset,
            &ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .filter_expr(filter.clone())
                .seed(42),
        )
        .expect("valid filtered request");
    println!(
        "\nfiltered release ({} cells, weak regime): filter digest {} recorded in provenance",
        artifact.cells().expect("marginal payload").len(),
        artifact.request.filter_id().expect("AST-filtered request"),
    );

    println!(
        "\nThe formally private releases carry provable (alpha, epsilon)-ER-EE \
         guarantees;\nthe SDL release does not (see the sdl_attacks example)."
    );
}
