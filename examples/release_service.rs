//! The release service end to end on loopback: start the HTTP frontend
//! over a fresh agency, serve two tenants, demonstrate the zero-ε public
//! cache on a repeat request, and print the audit trail.
//!
//! ```text
//! cargo run --release --example release_service
//! ```

use eree::prelude::*;
use eree_core::engine::RequestKind;
use std::time::Duration;

fn submission(spec: MarginalSpec, epsilon: f64, seed: u64) -> ReleaseSubmission {
    ReleaseSubmission {
        kind: RequestKind::Marginal,
        spec,
        mechanism: MechanismKind::LogLaplace,
        budget: PrivacyParams::pure(0.1, epsilon),
        budget_is_per_cell: false,
        filter: None,
        integerize: true,
        seed,
        description: None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("eree-example-release-service");
    let _ = std::fs::remove_dir_all(&dir);

    // One agency, one global cap, one confidential dataset — exposed to
    // many tenants over HTTP.
    let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
    let cap = PrivacyParams::pure(0.1, 2.0);
    let service = ReleaseService::start(&dir, dataset, ServiceConfig::new(cap))?;
    let client = Client::new(service.addr());
    println!("release service listening on http://{}", service.addr());

    // Two tenants reserve their seasons; the budget is held durably in
    // the agency meta-ledger before either runs anything.
    for (season, epsilon) in [("census-q1", 1.0), ("bls-q1", 0.6)] {
        let created = client.create_season(season, PrivacyParams::pure(0.1, epsilon))?;
        println!(
            "season {:<9} reserved eps={:.1} (agency eps remaining: {:.1})",
            created.name, created.budget.epsilon, created.remaining_epsilon
        );
    }

    // Each tenant releases the county x age marginal under its own
    // budget and seed.
    let spec = MarginalSpec::new(vec![WorkplaceAttr::County], vec![WorkerAttr::Age]);
    for (season, seed) in [("census-q1", 41), ("bls-q1", 42)] {
        let receipt = client.submit(season, &submission(spec.clone(), 0.3, seed))?;
        let done = client.wait_for(receipt.id, Duration::from_secs(60))?;
        println!(
            "{season}: release {} is {} (cached: {})",
            done.id, done.status, done.cached
        );
        assert_eq!(done.status, "complete");
    }

    // A repeat of an identical request never touches the confidential
    // side again: it is served from the public released-artifact cache,
    // spends zero ε, and tabulates nothing.
    let before = client.audit()?;
    let repeat = client.submit("census-q1", &submission(spec.clone(), 0.3, 41))?;
    let after = client.audit()?;
    println!(
        "repeat request: status={} cached={} (eps spent {:.2} -> {:.2}, tabulations {} -> {})",
        repeat.status,
        repeat.cached,
        before.spent_epsilon,
        after.spent_epsilon,
        before.tabulations.computed,
        after.tabulations.computed,
    );
    assert!(repeat.cached, "repeat must be a cache hit");
    assert_eq!(before.spent_epsilon, after.spent_epsilon);
    assert_eq!(before.tabulations.computed, after.tabulations.computed);

    println!(
        "\naudit: cap eps={:.1}, reserved={:.1}, spent={:.2}, cache entries={}, cache hits={}",
        after.cap.epsilon,
        after.reserved_epsilon,
        after.spent_epsilon,
        after.cache_entries,
        after.cache_hits,
    );
    for season in &after.seasons {
        println!(
            "  {:<9} eps {:.2}/{:.1} across {} release(s)",
            season.name, season.spent_epsilon, season.budget.epsilon, season.completed
        );
    }

    // `GET /metrics` publishes the same accounting as a structured
    // snapshot: two admitted marginals, one public-cache hit, and a JSON
    // form that round-trips bit-exactly.
    let metrics = client.metrics()?;
    let marginal = metrics
        .families
        .iter()
        .find(|f| f.family == "marginal")
        .expect("snapshot carries the marginal family");
    assert_eq!(marginal.accepted_total, 2);
    assert_eq!(marginal.denied_total, 0);
    assert!(metrics.caches.public_hits >= 1, "the repeat was a hit");
    let roundtrip: eree_core::metrics::MetricsSnapshot =
        serde_json::from_str(&serde_json::to_string(&metrics)?)?;
    assert_eq!(roundtrip, metrics);
    println!(
        "metrics: marginal accepted={} eps_spent={:.2}, public cache hits={}, flushes={}",
        marginal.accepted_total,
        marginal.epsilon_spent,
        metrics.caches.public_hits,
        metrics.flushes,
    );

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nservice drained, leases released, agency directory intact");
    Ok(())
}
