//! The Section 5.2 inference attacks: why input noise infusion is not
//! formally private, and how ER-EE-private releases resist the same
//! attacks.
//!
//! Run: `cargo run --release --example sdl_attacks`

use eree::prelude::*;
use sdl::attack::{
    establishment_of_singleton, shape_attack, singleton_cells, size_attack_with_known_cell,
    worker_cells_for,
};
use tabulate::compute_marginal;

fn main() {
    let dataset = Generator::new(GeneratorConfig::test_small(21)).generate();
    // Exact published ratios (no rounding) per the paper's analysis.
    let sdl_cfg = SdlConfig {
        round_output: false,
        ..SdlConfig::default()
    };
    let publisher = SdlPublisher::new(&dataset, sdl_cfg);

    // Precondition of the attacks: a workplace-attribute combination that
    // exactly one establishment matches.
    let w1_truth = compute_marginal(&dataset, &workload1());
    let singles = singleton_cells(&w1_truth);
    let (victim_key, victim_stats) = singles
        .iter()
        .map(|&k| (k, w1_truth.cell(k).unwrap()))
        .filter(|(_, s)| s.count >= 20)
        .max_by_key(|(_, s)| s.count)
        .expect("sparse tabulations always contain singleton cells");
    let victim = establishment_of_singleton(&dataset, &w1_truth, victim_key)
        .expect("singleton establishment");
    println!(
        "victim: establishment {:?} — the only one matching its (place, naics, ownership) \
         cell; true size {}",
        victim, victim_stats.count
    );

    // ---- Attack 1: size disclosure with one known cell -------------------
    let release = publisher.publish(&dataset, &workload1());
    let published_total = release.published[&victim_key];
    // The attacker (say, the establishment's own payroll clerk) knows the
    // true total; any single known cell suffices.
    let result = size_attack_with_known_cell(
        &dataset,
        victim,
        victim_stats.count as u32,
        published_total,
        published_total,
    );
    println!(
        "\n[SDL size attack]   recovered factor f_w = {:.6}, recovered size = {:.2} \
         (true {})",
        result.recovered_factor, result.recovered_size, result.true_size
    );
    assert!((result.recovered_size - result.true_size as f64).abs() < 1e-6);

    // ---- Attack 2: shape disclosure --------------------------------------
    let w3_release = publisher.publish(&dataset, &workload3());
    let wp_values: Vec<u32> = w1_truth.schema().decode(victim_key);
    let cells = worker_cells_for(&w3_release, &wp_values, sdl_cfg.small_cell.limit);
    if cells.len() >= 2 {
        let shape = shape_attack(victim, &cells);
        println!(
            "[SDL shape attack]  recovered workforce shape over {} cells; max share error \
             {:.2e} (exact disclosure)",
            shape.recovered_shape.len(),
            shape.max_share_error
        );
        assert!(shape.max_share_error < 1e-9);
    } else {
        println!("[SDL shape attack]  victim too small for multi-cell shape demo");
    }

    // ---- The same attacks against a formally private release -------------
    let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
    let private = engine
        .execute_precomputed(
            &w1_truth,
            &ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .seed(3),
        )
        .unwrap();
    let private_total = private.cells().expect("marginal payload")[&victim_key];
    // The "recovered factor" is now meaningless: the noise is additive with
    // heavy tails and *fresh per release* — dividing by a known cell no
    // longer cancels anything, and repeating the attack across releases
    // (sequential composition) is exactly what the epsilon budget accounts.
    let bogus_factor = private_total / victim_stats.count as f64;
    println!(
        "\n[ER-EE release]     published {:.2} for the same cell; naive 'factor' {:.4} \
         carries no establishment secret",
        private_total, bogus_factor
    );
    println!(
        "[ER-EE guarantee]   any size in [{}, {}] is indistinguishable up to e^2 odds \
         (alpha = 0.1, eps = 2)",
        victim_stats.count,
        (victim_stats.count as f64 * 1.1).ceil() as u64
    );
}
