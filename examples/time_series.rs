//! Quarterly time series: dynamically consistent SDL noise leaks exact
//! growth rates; a formally private panel agency pays for each quarter
//! from one multi-year cap instead.
//!
//! QWI-style products reuse one distortion factor per establishment across
//! its whole lifetime so published series are "dynamically consistent" —
//! which means the factor cancels in ratios. For any singleton-
//! establishment cell the published quarter-over-quarter ratio *is* the
//! true growth rate, a commercially sensitive quantity, recoverable with
//! no background knowledge at all.
//!
//! The private side runs the same panel through an
//! [`AgencyStore`](eree_core::agency::AgencyStore) in quarterly-panel
//! mode: every quarter is a season reserving from one `MetaLedger` cap,
//! level releases get fresh per-quarter noise (so the ratio attack fails),
//! and origin-destination *flow* releases (B, JC, JD with E derived by
//! post-processing) ride the same declarative pipeline.
//!
//! Run: `cargo run --release --example time_series`

use eree::prelude::*;
use lodes::{DatasetPanel, PanelConfig};
use sdl::{growth_rate_attack, PanelPublisher};

/// The quarter's release plan: a level marginal every quarter, plus the
/// `(q-1, q)` job-flow statistics once a before-quarter exists. Seeds are
/// per-request constants — the agency derives the actual per-quarter seed
/// with the consistent-over-time rule, so re-running a season resumes
/// bit-identically.
fn quarter_plan(q: usize) -> Vec<ReleaseRequest> {
    let mut plan = vec![ReleaseRequest::marginal(workload1())
        .mechanism(MechanismKind::LogLaplace)
        .budget(PrivacyParams::pure(0.1, 2.0))
        .describe(format!("Q{q} beginning-of-quarter employment"))
        .seed(100)];
    if q > 0 {
        plan.push(
            ReleaseRequest::flows(workload1())
                .mechanism(MechanismKind::LogLaplace)
                .budget(PrivacyParams::pure(0.1, 3.0))
                .describe(format!("Q{}->Q{q} job flows", q - 1))
                .seed(100),
        );
    }
    plan
}

fn main() {
    let panel = DatasetPanel::generate(
        &GeneratorConfig::test_small(2021),
        &PanelConfig {
            quarters: 4,
            growth_sigma: 0.08,
            death_rate: 0.0,
            seed: 13,
        },
    );
    println!(
        "panel: {} establishments x {} quarters ({} jobs in Q0)",
        panel.quarter(0).num_workplaces(),
        panel.quarters(),
        panel.quarter(0).num_jobs()
    );

    // --- SDL: one factor per establishment, forever --------------------
    let cfg = SdlConfig {
        round_output: false,
        ..SdlConfig::default()
    };
    let publisher = PanelPublisher::new(&panel, cfg);
    let releases = publisher.publish_all(&panel, &workload1());
    let attacked = growth_rate_attack(&panel, &releases, cfg.small_cell.limit);
    let exact = attacked
        .iter()
        .filter(|r| (r.recovered_growth - r.true_growth).abs() < 1e-9)
        .count();
    println!(
        "\n[SDL]   growth-rate attack: {} singleton cell-quarters attacked, {} recovered EXACTLY",
        attacked.len(),
        exact
    );
    if let Some(r) = attacked.first() {
        println!(
            "        e.g. establishment {:?}, Q{} -> Q{}: published ratio {:.6}, true growth {:.6}",
            r.workplace,
            r.quarter,
            r.quarter + 1,
            r.recovered_growth,
            r.true_growth
        );
    }

    // --- ER-EE private: a panel agency, one cap over every quarter -----
    // Each quarter is a season whose whole budget is reserved from the
    // multi-year MetaLedger cap before the season exists; flow releases
    // are priced at 3x their per-cell budget (B, JC, JD sequentially; the
    // ending level E = B + JC - JD is free post-processing).
    let dir = std::env::temp_dir().join("eree-example-time-series");
    let _ = std::fs::remove_dir_all(&dir);
    let cap = PrivacyParams::pure(0.1, 17.0);
    let mut agency = AgencyStore::create_panel(&dir, cap).expect("fresh agency directory");
    for q in 0..panel.quarters() {
        let name = format!("q{q}");
        let quarterly = PrivacyParams::pure(0.1, if q == 0 { 2.0 } else { 5.0 });
        agency
            .create_season(&name, quarterly)
            .expect("cap covers every quarter");
        agency
            .run_panel_season(&name, &panel, q, &quarter_plan(q))
            .expect("quarterly budget covers the plan");
    }
    println!(
        "\n[ER-EE] {} quarterly seasons under one multi-year cap: \
         reserved eps={:.1}, remaining eps={:.1} of {:.1}",
        panel.quarters(),
        agency.spent_epsilon(),
        agency.remaining_epsilon(),
        cap.epsilon
    );

    // Killing and re-running a quarter re-spends nothing: the derived
    // per-quarter seeds make the resume reproduce every artifact
    // bit-for-bit, so the season store recognizes the whole plan.
    let resumed = agency
        .run_panel_season("q3", &panel, 3, &quarter_plan(3))
        .expect("resume is idempotent");
    println!(
        "[ER-EE] re-running Q3: {} releases resumed from disk, {} executed, eps spent 0",
        resumed.resumed_from, resumed.executed
    );

    // The same ratio attack against the private level series.
    let mut rel_errors = Vec::new();
    for q in 0..panel.quarters() - 1 {
        let truth_a = compute_marginal(panel.quarter(q), &workload1());
        let truth_b = compute_marginal(panel.quarter(q + 1), &workload1());
        let rel_a = agency
            .open_season(&format!("q{q}"))
            .and_then(|s| s.load_artifact(0))
            .expect("level artifact persisted");
        let rel_b = agency
            .open_season(&format!("q{}", q + 1))
            .and_then(|s| s.load_artifact(0))
            .expect("level artifact persisted");
        let (pub_a, pub_b) = (
            rel_a.cells().expect("marginal payload"),
            rel_b.cells().expect("marginal payload"),
        );
        for (key, stats_a) in truth_a.iter() {
            if stats_a.establishments != 1 || stats_a.count < 5 {
                continue;
            }
            let Some(stats_b) = truth_b.cell(key) else {
                continue;
            };
            if stats_b.establishments != 1 || stats_b.count < 5 {
                continue;
            }
            let recovered = pub_b[&key] / pub_a[&key];
            let true_growth = stats_b.count as f64 / stats_a.count as f64;
            rel_errors.push(((recovered - true_growth) / true_growth).abs());
        }
    }
    rel_errors.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let median = rel_errors.get(rel_errors.len() / 2).copied().unwrap_or(0.0);
    println!(
        "[ER-EE] ratio attack on {} cell-quarters: median relative error of the \
         'recovered' growth is {:.1}%\n        (the SDL attack's was exactly 0%)",
        rel_errors.len(),
        median * 100.0
    );

    // The flow releases: noisy B/JC/JD per cell, E derived — the QWI
    // identity E - B = JC - JD holds exactly in every published cell.
    for q in 1..panel.quarters() {
        let artifact = agency
            .open_season(&format!("q{q}"))
            .and_then(|s| s.load_artifact(1))
            .expect("flow artifact persisted");
        let flows = artifact.flows().expect("flow payload");
        let truth = compute_flows(panel.quarter(q - 1), panel.quarter(q), &workload1());
        let true_totals = truth.totals();
        let (mut b, mut jc, mut jd) = (0.0, 0.0, 0.0);
        for release in flows.values() {
            assert!(
                ((release.ending - release.beginning)
                    - (release.job_creation - release.job_destruction))
                    .abs()
                    < 1e-9,
                "released cells keep the QWI identity"
            );
            b += release.beginning;
            jc += release.job_creation;
            jd += release.job_destruction;
        }
        println!(
            "[ER-EE] Q{}->Q{q} flows over {} cells: released totals \
             B={b:.0} JC={jc:.0} JD={jd:.0} (true {} / {} / {})",
            q - 1,
            flows.len(),
            true_totals.beginning,
            true_totals.job_creation,
            true_totals.job_destruction
        );
    }

    std::fs::remove_dir_all(&dir).expect("example cleans up after itself");
}
