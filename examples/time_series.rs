//! Quarterly time series: dynamically consistent SDL noise leaks exact
//! growth rates; formally private releases pay for each quarter through
//! sequential composition instead.
//!
//! QWI-style products reuse one distortion factor per establishment across
//! its whole lifetime so published series are "dynamically consistent" —
//! which means the factor cancels in ratios. For any singleton-
//! establishment cell the published quarter-over-quarter ratio *is* the
//! true growth rate, a commercially sensitive quantity, recoverable with
//! no background knowledge at all.
//!
//! Run: `cargo run --release --example time_series`

use eree::prelude::*;
use lodes::{DatasetPanel, PanelConfig};
use sdl::{growth_rate_attack, PanelPublisher};

fn main() {
    let panel = DatasetPanel::generate(
        &GeneratorConfig::test_small(2021),
        &PanelConfig {
            quarters: 4,
            growth_sigma: 0.08,
            death_rate: 0.0,
            seed: 13,
        },
    );
    println!(
        "panel: {} establishments x {} quarters ({} jobs in Q0)",
        panel.quarter(0).num_workplaces(),
        panel.quarters(),
        panel.quarter(0).num_jobs()
    );

    // --- SDL: one factor per establishment, forever --------------------
    let cfg = SdlConfig {
        round_output: false,
        ..SdlConfig::default()
    };
    let publisher = PanelPublisher::new(&panel, cfg);
    let releases = publisher.publish_all(&panel, &workload1());
    let attacked = growth_rate_attack(&panel, &releases, cfg.small_cell.limit);
    let exact = attacked
        .iter()
        .filter(|r| (r.recovered_growth - r.true_growth).abs() < 1e-9)
        .count();
    println!(
        "\n[SDL]   growth-rate attack: {} singleton cell-quarters attacked, {} recovered EXACTLY",
        attacked.len(),
        exact
    );
    if let Some(r) = attacked.first() {
        println!(
            "        e.g. establishment {:?}, Q{} -> Q{}: published ratio {:.6}, true growth {:.6}",
            r.workplace,
            r.quarter,
            r.quarter + 1,
            r.recovered_growth,
            r.true_growth
        );
    }

    // --- ER-EE private: fresh noise each quarter, one engine ledger ----
    // The engine enforces the annual budget across the quarterly releases:
    // each request is checked against the remainder before sampling.
    let annual = PrivacyParams::approximate(0.1, 8.0, 0.05);
    let mut engine = ReleaseEngine::new(annual);
    let per_quarter = PrivacyParams::approximate(0.1, 2.0, 0.0125);
    let mut private_releases = Vec::new();
    for (q, snapshot) in panel.snapshots().iter().enumerate() {
        let artifact = engine
            .execute(
                snapshot,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::SmoothLaplace)
                    .budget(per_quarter)
                    .describe(format!("Q{q} workload-1 release"))
                    .seed(100 + q as u64),
            )
            .expect("annual budget covers four quarters");
        let truth = compute_marginal(snapshot, &workload1());
        private_releases.push((truth, artifact));
    }
    println!(
        "\n[ER-EE] four quarterly releases at (alpha=0.1, eps=2, delta=0.0125) each;\n        \
         ledger: spent eps={:.1}, remaining eps={:.1} of the annual {:.1}",
        annual.epsilon - engine.ledger().remaining_epsilon(),
        engine.ledger().remaining_epsilon(),
        annual.epsilon
    );

    // The same ratio attack against the private series.
    let mut rel_errors = Vec::new();
    for q in 0..private_releases.len() - 1 {
        let (truth_a, rel_a) = &private_releases[q];
        let (truth_b, rel_b) = &private_releases[q + 1];
        let (pub_a, pub_b) = (
            rel_a.cells().expect("marginal payload"),
            rel_b.cells().expect("marginal payload"),
        );
        for (key, stats_a) in truth_a.iter() {
            if stats_a.establishments != 1 || stats_a.count < 5 {
                continue;
            }
            let Some(stats_b) = truth_b.cell(key) else {
                continue;
            };
            if stats_b.establishments != 1 || stats_b.count < 5 {
                continue;
            }
            let recovered = pub_b[&key] / pub_a[&key];
            let true_growth = stats_b.count as f64 / stats_a.count as f64;
            rel_errors.push(((recovered - true_growth) / true_growth).abs());
        }
    }
    rel_errors.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let median = rel_errors.get(rel_errors.len() / 2).copied().unwrap_or(0.0);
    println!(
        "[ER-EE] ratio attack on {} cell-quarters: median relative error of the \
         'recovered' growth is {:.1}%\n        (the SDL attack's was exactly 0%)",
        rel_errors.len(),
        median * 100.0
    );
}
