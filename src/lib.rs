//! # eree — formal privacy for national employer-employee statistics
//!
//! A Rust reproduction of Haney, Machanavajjhala, Abowd, Graham, Kutzbach
//! and Vilhuber, *"Utility Cost of Formal Privacy for Releasing National
//! Employer-Employee Statistics"* (SIGMOD 2017): privacy definitions and
//! release mechanisms for tabular summaries of linked employer-employee
//! (ER-EE) data, evaluated against the statistical-disclosure-limitation
//! system used in production by the U.S. Census Bureau's LODES product.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`lodes`] — synthetic LODES-style data substrate (schema, geography,
//!   calibrated generator).
//! * [`tabulate`] — marginal (GROUP BY) query engine with per-cell
//!   establishment metadata.
//! * [`noise`] — noise distributions (Laplace, log-Laplace, polynomial-
//!   tail) with analytic densities.
//! * [`sdl`] — the input-noise-infusion baseline and its inference
//!   attacks.
//! * [`graphdp`] — edge- and node-DP baselines on the bipartite job graph.
//! * [`eree_core`] — the paper's contribution: (α,ε)-ER-EE privacy,
//!   smooth sensitivity, and the Log-Laplace / Smooth Gamma / Smooth
//!   Laplace mechanisms.
//! * [`eval`] — the experiment harness regenerating every table and
//!   figure.
//!
//! ## Quickstart
//!
//! ```
//! use eree::prelude::*;
//!
//! // Generate a small synthetic ER-EE universe.
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//!
//! // Release the place x industry x ownership marginal with provable
//! // (alpha = 0.1, epsilon = 2) ER-EE privacy via Smooth Gamma.
//! let config = ReleaseConfig {
//!     mechanism: MechanismKind::SmoothGamma,
//!     budget: PrivacyParams::pure(0.1, 2.0),
//!     seed: 42,
//! };
//! let release = release_marginal(&dataset, &workload1(), &config).unwrap();
//! assert_eq!(release.published.len(), release.truth.num_cells());
//! println!("mean per-cell error: {:.2}", release.mean_l1_error());
//! ```

pub use eree_core;
pub use eval;
pub use graphdp;
pub use lodes;
pub use noise;
pub use sdl;
pub use tabulate;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use eree_core::release::release_marginal_filtered;
    pub use eree_core::{
        release_marginal, CountMechanism, Ledger, MechanismKind, PrivacyParams, PrivateRelease,
        ReleaseConfig, ReleaseCost,
    };
    pub use lodes::{Dataset, DatasetStats, Generator, GeneratorConfig, PlaceSizeClass};
    pub use sdl::{SdlConfig, SdlPublisher};
    pub use tabulate::{
        compute_marginal, compute_marginal_filtered, ranking2_filter, workload1, workload3,
        CellKey, Marginal, MarginalSpec, WorkerAttr, WorkplaceAttr,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_working_pipeline() {
        let dataset = Generator::new(GeneratorConfig::test_small(1)).generate();
        let config = ReleaseConfig {
            mechanism: MechanismKind::LogLaplace,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 5,
        };
        let release = release_marginal(&dataset, &workload1(), &config).unwrap();
        assert!(release.l1_error() > 0.0);
    }
}
