//! # eree — formal privacy for national employer-employee statistics
//!
//! A Rust reproduction of Haney, Machanavajjhala, Abowd, Graham, Kutzbach
//! and Vilhuber, *"Utility Cost of Formal Privacy for Releasing National
//! Employer-Employee Statistics"* (SIGMOD 2017): privacy definitions and
//! release mechanisms for tabular summaries of linked employer-employee
//! (ER-EE) data, evaluated against the statistical-disclosure-limitation
//! system used in production by the U.S. Census Bureau's LODES product.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`lodes`] — synthetic LODES-style data substrate (schema, geography,
//!   calibrated generator).
//! * [`tabulate`] — marginal (GROUP BY) query engine with per-cell
//!   establishment metadata, plus the declarative
//!   [`FilterExpr`](tabulate::FilterExpr) sub-population filters.
//! * [`noise`] — noise distributions (Laplace, log-Laplace, polynomial-
//!   tail) with analytic densities.
//! * [`sdl`] — the input-noise-infusion baseline and its inference
//!   attacks.
//! * [`graphdp`] — edge- and node-DP baselines on the bipartite job graph.
//! * [`eree_core`] — the paper's contribution: (α,ε)-ER-EE privacy,
//!   smooth sensitivity, the Log-Laplace / Smooth Gamma / Smooth Laplace
//!   mechanisms, and the ledger-enforced release engine.
//! * [`eree_service`] — a multi-tenant HTTP release service over the
//!   agency: per-season write leases and worker queues, plus a public
//!   released-artifact cache that answers repeat requests at zero ε.
//! * [`eval`] — the experiment harness regenerating every table and
//!   figure.
//!
//! ## Quickstart
//!
//! Every formally private release flows through the
//! [`ReleaseEngine`](eree_core::engine::ReleaseEngine): open it with a
//! session budget, describe releases with the
//! [`ReleaseRequest`](eree_core::engine::ReleaseRequest) builder, and get
//! back serializable [`ReleaseArtifact`](eree_core::engine::ReleaseArtifact)s.
//! The engine validates every request against the remaining budget
//! *before* sampling; a refused request spends nothing.
//!
//! ```
//! use eree::prelude::*;
//!
//! // Generate a small synthetic ER-EE universe.
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//!
//! // One ledger for the whole session: (alpha = 0.1, eps = 4).
//! let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));
//!
//! // Release the place x industry x ownership marginal with provable
//! // (alpha = 0.1, epsilon = 2) ER-EE privacy via Smooth Gamma.
//! let artifact = engine
//!     .execute(
//!         &dataset,
//!         &ReleaseRequest::marginal(workload1())
//!             .mechanism(MechanismKind::SmoothGamma)
//!             .budget(PrivacyParams::pure(0.1, 2.0))
//!             .seed(42),
//!     )
//!     .unwrap();
//! assert!(artifact.cells().unwrap().len() > 0);
//! // Half the session budget remains for later releases.
//! assert!((engine.ledger().remaining_epsilon() - 2.0).abs() < 1e-12);
//! ```

pub use eree_core;
pub use eree_service;
pub use eval;
pub use graphdp;
pub use lodes;
pub use noise;
pub use sdl;
pub use tabulate;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    #[allow(deprecated)]
    pub use eree_core::release::{release_marginal, release_marginal_filtered};
    #[allow(deprecated)]
    pub use eree_core::shape::release_shapes;
    pub use eree_core::{
        panel_quarter_seed, AgencyStore, ArtifactPayload, CountMechanism, EngineError,
        FamilySnapshot, FilterExpr, FilterId, FlowRelease, Ledger, MechanismKind, MetaLedger,
        MetricsRegistry, MetricsSnapshot, PrivacyParams, PrivateRelease, ReleaseArtifact,
        ReleaseConfig, ReleaseCost, ReleaseEngine, ReleaseRequest, RequestKind, SeasonReport,
        SeasonStore, SeasonSummary, StoreError, TabulationCache, TabulationStats, TruthStore,
    };
    pub use eree_service::{Client, ReleaseService, ReleaseSubmission, ServiceConfig};
    pub use lodes::{
        CountyId, Dataset, DatasetStats, Generator, GeneratorConfig, PlaceSizeClass, StateId,
    };
    pub use sdl::{SdlConfig, SdlPublisher};
    pub use tabulate::{
        compute_flows, compute_marginal, compute_marginal_expr, compute_marginal_filtered,
        ranking2_expr, ranking2_filter, workload1, workload3, CellKey, FlowMarginal, FlowStats,
        Marginal, MarginalSpec, TabulationIndex, WorkerAttr, WorkplaceAttr,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_working_pipeline() {
        let dataset = Generator::new(GeneratorConfig::test_small(1)).generate();
        let truth = compute_marginal(&dataset, &workload1());
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
        let artifact = engine
            .execute(
                &dataset,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::LogLaplace)
                    .budget(PrivacyParams::pure(0.1, 2.0))
                    .seed(5),
            )
            .unwrap();
        assert!(artifact.l1_error_against(&truth).unwrap() > 0.0);
    }
}
