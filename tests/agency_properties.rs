//! Property-based tests for the agency layer:
//!
//! * however season creates, release charges, and agency reopens are
//!   interleaved, the total ε spent across all seasons never exceeds the
//!   agency cap (and every refusal happens with nothing recorded);
//! * tampering any one season's ledger snapshot makes `AgencyStore::open`
//!   refuse the whole agency;
//! * truths loaded from the persistent truth store are bit-identical to
//!   freshly computed ones, across random specs, filters, and shard
//!   counts.

use eree::prelude::*;
use eree_core::agency::AgencyStore;
use eree_core::{TruthStore, LEDGER_REL_TOL};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tabulate::compute_marginal_expr;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(prefix: &str) -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eree-agency-prop-{prefix}-{}-{id}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A release consuming `epsilon` of a season's budget.
fn request(seed: u64, epsilon: f64) -> ReleaseRequest {
    ReleaseRequest::marginal(workload1())
        .mechanism(MechanismKind::LogLaplace)
        .budget(PrivacyParams::pure(0.1, epsilon))
        .seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random interleavings of season creates / release charges / agency
    /// reopens: the lifetime spend across every season stays under the
    /// cap, season spends stay under their reservations, and reopening
    /// always succeeds with unchanged totals.
    #[test]
    fn interleaved_seasons_never_exceed_the_cap(
        cap_eps in 2.0f64..10.0,
        // Each op packs (kind, fraction): kind = v % 3, frac from v / 3.
        raw_ops in prop::collection::vec(0u32..3000, 1..7),
        data_seed in 0u64..20,
    ) {
        let ops: Vec<(u8, f64)> = raw_ops
            .iter()
            .map(|&v| ((v % 3) as u8, 0.05 + 0.85 * ((v / 3) as f64 / 1000.0)))
            .collect();
        let dir = tmp_dir("interleave");
        let d = Generator::new(GeneratorConfig::test_small(data_seed)).generate();
        let cap = PrivacyParams::pure(0.1, cap_eps);
        let tol = 1.0 + LEDGER_REL_TOL;
        let mut agency = AgencyStore::create(&dir, cap).unwrap();
        let mut created: Vec<String> = Vec::new();
        let mut seed = 0u64;

        for (i, &(kind, frac)) in ops.iter().enumerate() {
            match kind {
                // Create a season taking `frac` of the whole cap.
                0 => {
                    let name = format!("s{i}");
                    let budget = PrivacyParams::pure(0.1, frac * cap_eps);
                    match agency.create_season(&name, budget) {
                        Ok(_) => created.push(name),
                        Err(StoreError::AgencyBudget { .. }) => {
                            // Refusal must mean the reservation would
                            // genuinely overdraw the cap.
                            prop_assert!(
                                agency.meta_ledger().reserved_epsilon() + budget.epsilon
                                    > cap_eps * tol
                            );
                        }
                        Err(e) => panic!("unexpected store error: {e}"),
                    }
                }
                // Charge a release against some existing season.
                1 if !created.is_empty() => {
                    let name = &created[i % created.len()];
                    // Scoped peek: the handle's write lease must be
                    // released before `run_season` opens the season again.
                    let eps = {
                        let season = agency.open_season(name).unwrap();
                        (frac * season.ledger().remaining_epsilon()).max(0.01)
                    };
                    seed += 1;
                    match agency.run_season(name, &d, &[request(seed, eps)]) {
                        Ok(_) => {}
                        Err(StoreError::Refused { .. }) => {}
                        Err(e) => panic!("unexpected store error: {e}"),
                    }
                }
                // Resume: drop everything and reopen from disk.
                _ => {
                    let reserved = agency.meta_ledger().reserved_epsilon();
                    let spent = agency.spent_epsilon();
                    drop(agency);
                    agency = AgencyStore::open(&dir).unwrap();
                    prop_assert_eq!(agency.meta_ledger().reserved_epsilon(), reserved);
                    prop_assert!((agency.spent_epsilon() - spent).abs() < 1e-12);
                }
            }
            // The cap invariants hold after every operation.
            prop_assert!(agency.meta_ledger().reserved_epsilon() <= cap_eps * tol);
            prop_assert!(agency.spent_epsilon() <= cap_eps * tol);
            for summary in agency.seasons() {
                prop_assert!(summary.spent_epsilon <= summary.budget.epsilon * tol);
            }
        }
        // Whatever happened, each season's plan is still resumable: the
        // full verification passes on a final reopen.
        drop(agency);
        let agency = AgencyStore::open(&dir).unwrap();
        prop_assert!(agency.spent_epsilon() <= cap_eps * tol);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Tampering any one season's ledger snapshot — whichever season, and
    /// whether the totals are inflated, deflated, or the file truncated —
    /// refuses the whole agency on open.
    #[test]
    fn tampering_any_season_ledger_refuses_open(
        victim in 0usize..3,
        mode in 0u8..3,
        data_seed in 0u64..10,
    ) {
        let dir = tmp_dir("tamper");
        let d = Generator::new(GeneratorConfig::test_small(data_seed)).generate();
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 9.0)).unwrap();
        for i in 0..3 {
            let name = format!("s{i}");
            agency.create_season(&name, PrivacyParams::pure(0.1, 3.0)).unwrap();
            agency
                .run_season(&name, &d, &[request(i as u64, 1.5)])
                .unwrap();
        }
        drop(agency);

        let ledger_path = dir
            .join("seasons")
            .join(format!("s{victim}"))
            .join("ledger.json");
        let original = fs::read_to_string(&ledger_path).unwrap();
        let spent = format!("\"spent_epsilon\": {:?}", 1.5f64);
        let tampered = match mode {
            // Deflate the recorded spend (claim budget back).
            0 => original.replace(&spent, "\"spent_epsilon\": 0.25"),
            // Inflate the season's budget beyond its reservation.
            1 => original.replacen("\"epsilon\": 3.0", "\"epsilon\": 7.0", 1),
            // Truncate: not even parseable.
            _ => original[..original.len() / 2].to_string(),
        };
        assert_ne!(tampered, original);
        fs::write(&ledger_path, &tampered).unwrap();
        prop_assert!(AgencyStore::open(&dir).is_err());
        // Restoring the snapshot restores the agency.
        fs::write(&ledger_path, &original).unwrap();
        prop_assert!(AgencyStore::open(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Truths loaded from the persistent store are bit-identical to
    /// freshly computed ones — same cells, same stats, same schema, same
    /// content digest — across random specs, filters, data seeds, and
    /// shard counts.
    #[test]
    fn loaded_truths_are_bit_identical_to_fresh_tabulation(
        data_seed in 0u64..20,
        use_place in any::<bool>(),
        use_naics in any::<bool>(),
        use_sex in any::<bool>(),
        use_edu in any::<bool>(),
        filter_kind in 0u8..3,
        threads in 1usize..5,
    ) {
        use lodes::{Education, Sex};

        let dir = tmp_dir("truths");
        let d = Generator::new(GeneratorConfig::test_small(data_seed)).generate();
        let mut wp = vec![WorkplaceAttr::County];
        if use_place { wp.push(WorkplaceAttr::Place); }
        if use_naics { wp.push(WorkplaceAttr::Naics); }
        let mut wk = vec![];
        if use_sex { wk.push(WorkerAttr::Sex); }
        if use_edu { wk.push(WorkerAttr::Education); }
        let spec = MarginalSpec::new(wp, wk);
        let filter = match filter_kind {
            0 => None,
            1 => Some(FilterExpr::sex(Sex::Female)),
            _ => Some(
                FilterExpr::sex(Sex::Male)
                    .and(FilterExpr::education_at_least(Education::BachelorOrHigher)),
            ),
        };

        let index = TabulationIndex::build(&d);
        let truth = match &filter {
            Some(expr) => index.marginal_expr_sharded(&spec, expr, threads),
            None => index.marginal_sharded(&spec, threads),
        };
        let digest = eree_core::store::dataset_digest(&d);
        let store = TruthStore::open(&dir, digest).unwrap();
        store.save(&spec, filter.as_ref(), &truth).unwrap();

        // Loaded == saved, bit for bit.
        let loaded = store.load(&spec, filter.as_ref()).expect("persisted truth loads");
        prop_assert_eq!(&loaded, &truth);
        prop_assert_eq!(loaded.content_digest(), truth.content_digest());

        // …and == an independent fresh tabulation (single-threaded, fresh
        // index), so persistence composes with the determinism guarantee.
        let fresh = match &filter {
            Some(expr) => compute_marginal_expr(&d, &spec, expr),
            None => compute_marginal(&d, &spec),
        };
        prop_assert_eq!(&loaded, &fresh);
        fs::remove_dir_all(&dir).unwrap();
    }
}
