//! Integration tests for the agency layer: a two-season agency over one
//! confidential dataset with a global ε cap, a durable meta-ledger, and a
//! persistent content-addressed truth store shared across seasons.
//!
//! These are the acceptance gates of the agency layer:
//! (a) a season — or a request within one — that would exceed its bound
//!     is refused *before sampling*;
//! (b) a killed season resumes bit-identically with ε spent unchanged;
//! (c) a sibling season sharing a `(spec, filter)` tabulation is served
//!     from the persistent truth store with zero recomputation.

use eree::prelude::*;
use eree_core::agency::AgencyStore;
use std::fs;
use std::path::{Path, PathBuf};
use tabulate::ranking2_expr;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eree-agency-it-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Dataset {
    Generator::new(GeneratorConfig::test_small(55)).generate()
}

fn county() -> MarginalSpec {
    MarginalSpec::new(vec![WorkplaceAttr::County], vec![])
}

/// Season A: three releases over two distinct truth identities (the
/// filtered county release has its own).
fn season_a() -> Vec<ReleaseRequest> {
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .describe("A1: workload1")
            .seed(0xA1),
        ReleaseRequest::marginal(county())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("A2: county")
            .seed(0xA2),
        ReleaseRequest::marginal(county())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .filter_expr(ranking2_expr())
            .describe("A3: county, Ranking 2 population")
            .seed(0xA3),
    ]
}

/// Season B: re-releases of all three of season A's truth identities —
/// separately constructed specs and filter expressions, so sharing rests
/// on structural identity, never on object reuse.
fn season_b() -> Vec<ReleaseRequest> {
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("B1: workload1 re-release")
            .seed(0xB1),
        ReleaseRequest::marginal(county())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .filter_expr(ranking2_expr())
            .describe("B2: filtered county re-release")
            .seed(0xB2),
    ]
}

fn artifact_bytes(season_dir: &Path) -> Vec<Vec<u8>> {
    let mut files: Vec<_> = fs::read_dir(season_dir.join("artifacts"))
        .expect("artifacts dir")
        .map(|e| e.expect("entry").path())
        .collect();
    files.sort();
    files.iter().map(|p| fs::read(p).expect("bytes")).collect()
}

/// Acceptance (a): the global cap refuses an over-budget season before
/// any sampling — and an in-budget season still refuses an over-budget
/// *request* through its own ledger, also before sampling.
#[test]
fn cap_refuses_over_budget_seasons_and_requests_before_sampling() {
    let dir = tmp_dir("cap");
    let d = dataset();
    let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 6.0)).unwrap();
    agency
        .create_season("a", PrivacyParams::pure(0.1, 4.0))
        .unwrap();

    // Season-level refusal: 3.0 > remaining 2.0 under the cap.
    let err = agency
        .create_season("too-big", PrivacyParams::pure(0.1, 3.0))
        .unwrap_err();
    assert!(matches!(err, StoreError::AgencyBudget { .. }), "{err}");
    assert!(!dir.join("seasons").join("too-big").exists());

    // Request-level refusal: season `a` holds 4.0; its plan asks for 5.0.
    // The refusal happens at admission — nothing is persisted, no ε moves.
    let plan = vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 4.0))
            .seed(1),
        ReleaseRequest::marginal(county())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .seed(2),
    ];
    let err = agency.run_season("a", &d, &plan).unwrap_err();
    assert!(matches!(err, StoreError::Refused { index: 1, .. }), "{err}");
    let season = agency.open_season("a").unwrap();
    assert_eq!(
        season.completed(),
        1,
        "only the in-budget release persisted"
    );
    assert!((season.ledger().spent_epsilon() - 4.0).abs() < 1e-12);
    fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance (b) + (c): kill the second season partway; resume it from a
/// fresh process bit-identically with ε unchanged, serving every truth —
/// including the resumed requests' — from the persistent store with zero
/// recomputation.
#[test]
fn killed_sibling_season_resumes_bit_identically_from_shared_truths() {
    let base = tmp_dir("resume");
    let oneshot_dir = base.join("oneshot");
    let killed_dir = base.join("killed");
    let d = dataset();
    let cap = PrivacyParams::pure(0.1, 6.0);
    let budgets = [
        ("a", PrivacyParams::pure(0.1, 4.0)),
        ("b", PrivacyParams::pure(0.1, 2.0)),
    ];

    // Reference: both seasons, uninterrupted.
    let mut oneshot = AgencyStore::create(&oneshot_dir, cap).unwrap();
    for (name, budget) in budgets {
        oneshot.create_season(name, budget).unwrap();
    }
    let ra = oneshot.run_season("a", &d, &season_a()).unwrap();
    let rb = oneshot.run_season("b", &d, &season_b()).unwrap();
    assert_eq!(ra.tabulations_computed, 3);
    assert_eq!(
        (rb.tabulations_computed, rb.tabulation_disk_hits),
        (0, 2),
        "sibling season must be served entirely from the truth store"
    );

    // Same program; season b killed after its first release.
    let mut agency = AgencyStore::create(&killed_dir, cap).unwrap();
    for (name, budget) in budgets {
        agency.create_season(name, budget).unwrap();
    }
    agency.run_season("a", &d, &season_a()).unwrap();
    agency.run_season("b", &d, &season_b()[..1]).unwrap();
    let spent_before = agency.open_season("b").unwrap().ledger().spent_epsilon();
    drop(agency); // the kill

    let mut agency = AgencyStore::open(&killed_dir).unwrap();
    let resumed = agency.run_season("b", &d, &season_b()).unwrap();
    assert_eq!((resumed.resumed_from, resumed.executed), (1, 1));
    assert_eq!(resumed.tabulations_computed, 0, "resume re-tabulated");
    let season_b_store = agency.open_season("b").unwrap();
    // ε was spent exactly once per release: the prefix's spend carried
    // over untouched, the remainder added its own.
    assert!((season_b_store.ledger().spent_epsilon() - spent_before - 1.0).abs() < 1e-12);
    // Bit-identical artifacts, season by season.
    for name in ["a", "b"] {
        assert_eq!(
            artifact_bytes(&oneshot_dir.join("seasons").join(name)),
            artifact_bytes(&killed_dir.join("seasons").join(name)),
            "season `{name}` artifacts diverged across kill/resume"
        );
    }
    fs::remove_dir_all(&base).unwrap();
}

/// The meta-ledger and season ledgers agree after any interleaving of
/// opens: total spend across seasons never exceeds the cap, and reopening
/// is idempotent.
#[test]
fn reopened_agency_agrees_with_itself() {
    let dir = tmp_dir("reopen");
    let d = dataset();
    let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 6.0)).unwrap();
    agency
        .create_season("a", PrivacyParams::pure(0.1, 4.0))
        .unwrap();
    agency.run_season("a", &d, &season_a()).unwrap();
    drop(agency);
    let mut agency = AgencyStore::open(&dir).unwrap();
    agency
        .create_season("b", PrivacyParams::pure(0.1, 2.0))
        .unwrap();
    agency.run_season("b", &d, &season_b()).unwrap();
    drop(agency);
    let agency = AgencyStore::open(&dir).unwrap();
    assert!(agency.spent_epsilon() <= agency.cap().epsilon * (1.0 + 1e-9));
    assert!(agency.remaining_epsilon() < 1e-9);
    assert_eq!(agency.seasons().len(), 2);
    assert!(agency.seasons().iter().all(|s| s.materialized));
    fs::remove_dir_all(&dir).unwrap();
}

/// Tampering either level of the hierarchy — a season's ledger snapshot
/// or the agency's meta-ledger — refuses the whole agency on open.
#[test]
fn tampering_either_ledger_level_refuses_open() {
    let dir = tmp_dir("tamper");
    let d = dataset();
    let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 6.0)).unwrap();
    agency
        .create_season("a", PrivacyParams::pure(0.1, 4.0))
        .unwrap();
    agency.run_season("a", &d, &season_a()).unwrap();
    drop(agency);

    // Season ledger: claim less spend than the artifacts charged.
    let season_ledger = dir.join("seasons").join("a").join("ledger.json");
    let original = fs::read_to_string(&season_ledger).unwrap();
    let tampered = original.replace("\"spent_epsilon\": 4.0", "\"spent_epsilon\": 1.0");
    assert_ne!(tampered, original);
    fs::write(&season_ledger, &tampered).unwrap();
    assert!(AgencyStore::open(&dir).is_err());
    fs::write(&season_ledger, &original).unwrap();
    AgencyStore::open(&dir).expect("restored agency opens again");

    // Meta-ledger: shrink a recorded reservation so the totals lie.
    let meta_path = dir.join("meta_ledger.json");
    let original = fs::read_to_string(&meta_path).unwrap();
    let tampered = original.replace("\"reserved_epsilon\": 4.0", "\"reserved_epsilon\": 1.0");
    assert_ne!(tampered, original);
    fs::write(&meta_path, &tampered).unwrap();
    assert!(AgencyStore::open(&dir).is_err());
    fs::remove_dir_all(&dir).unwrap();
}

/// The truth store serves only verified truths: corrupting a persisted
/// truth file silently falls back to recomputation (self-healing) and the
/// released artifacts are unchanged.
#[test]
fn corrupted_truth_files_self_heal_without_changing_artifacts() {
    let base = tmp_dir("truth-heal");
    let clean_dir = base.join("clean");
    let corrupt_dir = base.join("corrupt");
    let d = dataset();
    let cap = PrivacyParams::pure(0.1, 6.0);

    for dir in [&clean_dir, &corrupt_dir] {
        let mut agency = AgencyStore::create(dir, cap).unwrap();
        agency
            .create_season("a", PrivacyParams::pure(0.1, 4.0))
            .unwrap();
        agency.run_season("a", &d, &season_a()).unwrap();
        agency
            .create_season("b", PrivacyParams::pure(0.1, 2.0))
            .unwrap();
        drop(agency);
    }
    // Corrupt every persisted truth in one agency.
    for entry in fs::read_dir(corrupt_dir.join("truths")).unwrap() {
        fs::write(entry.unwrap().path(), "{garbage").unwrap();
    }
    let mut clean = AgencyStore::open(&clean_dir).unwrap();
    let mut corrupt = AgencyStore::open(&corrupt_dir).unwrap();
    let rc = clean.run_season("b", &d, &season_b()).unwrap();
    let rk = corrupt.run_season("b", &d, &season_b()).unwrap();
    // The corrupted agency recomputed (and re-persisted) instead of
    // serving garbage…
    assert_eq!((rc.tabulations_computed, rc.tabulation_disk_hits), (0, 2));
    assert_eq!((rk.tabulations_computed, rk.tabulation_disk_hits), (2, 0));
    // …and the published artifacts are bit-identical either way.
    assert_eq!(
        artifact_bytes(&clean_dir.join("seasons").join("b")),
        artifact_bytes(&corrupt_dir.join("seasons").join("b")),
    );
    fs::remove_dir_all(&base).unwrap();
}
