//! Integration of the Section 5.2 attacks: they must succeed against the
//! SDL baseline and fail — quantifiably — against the formally private
//! mechanisms.
//!
//! Attack structure (Sec 5.2): the adversary knows the *true* count of one
//! worker-attribute cell of a singleton establishment (e.g. a payroll
//! clerk knows there are exactly k female college graduates). From the
//! published value of that cell they recover the establishment's
//! confidential distortion factor `f_w = published/known`, then divide any
//! other published cell by `f_w` to recover its true value — including the
//! total employment. This cancellation works because SDL reuses one
//! factor across all cells; it fails against the ER-EE mechanisms, whose
//! noise is fresh per cell.

use eree::prelude::*;
use sdl::attack::{establishment_of_singleton, singleton_cells, size_attack_with_known_cell};
use std::collections::BTreeMap;
use tabulate::{compute_marginal, Marginal, WorkerAttr};

/// Release `spec` through a single-use engine and return the published
/// cells (each test site is an independent guarantee statement).
fn engine_release(
    dataset: &Dataset,
    spec: &MarginalSpec,
    mechanism: MechanismKind,
    budget: PrivacyParams,
    seed: u64,
) -> BTreeMap<CellKey, f64> {
    let mut engine = ReleaseEngine::new(budget);
    let artifact = engine
        .execute(
            dataset,
            &ReleaseRequest::marginal(spec.clone())
                .mechanism(mechanism)
                .budget(budget)
                .seed(seed),
        )
        .unwrap();
    match artifact.payload {
        ArtifactPayload::Cells(cells) => cells,
        _ => unreachable!("marginal request yields cells"),
    }
}

struct AttackScenario {
    dataset: Dataset,
    /// Workload 1 truth (place × naics × ownership).
    w1_truth: Marginal,
    /// The victim's singleton Workload 1 cell.
    w1_key: CellKey,
    /// The victim establishment.
    victim: lodes::WorkplaceId,
    /// A Workload 3 cell (same workplace values + sex × education) whose
    /// true count the attacker knows, with count above the small-cell
    /// limit and below the establishment total.
    known_w3_key: CellKey,
    /// The known cell's true count.
    known_count: u64,
}

fn setup() -> AttackScenario {
    let dataset = Generator::new(GeneratorConfig::test_small(2020)).generate();
    let w1_truth = compute_marginal(&dataset, &workload1());
    let w3_truth = compute_marginal(&dataset, &workload3());

    // Find a singleton establishment with a known-cell candidate: a sex ×
    // education sub-cell with 3 <= count < total.
    for key in singleton_cells(&w1_truth) {
        let stats = w1_truth.cell(key).unwrap();
        if stats.count < 20 {
            continue;
        }
        let Some(victim) = establishment_of_singleton(&dataset, &w1_truth, key) else {
            continue;
        };
        let wp_values = w1_truth.schema().decode(key);
        // Scan the victim's worker cells in the W3 marginal.
        for (w3_key, w3_stats) in w3_truth.iter() {
            let values = w3_truth.schema().decode(w3_key);
            if values[..3] == wp_values[..] && w3_stats.count >= 3 && w3_stats.count < stats.count {
                return AttackScenario {
                    dataset,
                    w1_key: key,
                    victim,
                    known_w3_key: w3_key,
                    known_count: w3_stats.count,
                    w1_truth,
                };
            }
        }
    }
    panic!("no attack scenario found in test data");
}

#[test]
fn size_attack_succeeds_against_sdl_exactly() {
    let s = setup();
    let cfg = SdlConfig {
        round_output: false,
        ..SdlConfig::default()
    };
    let publisher = SdlPublisher::new(&s.dataset, cfg);
    let w1 = publisher.publish(&s.dataset, &workload1());
    let w3 = publisher.publish(&s.dataset, &workload3());

    // Recover f_w from the known worker cell, then unmask the total.
    let published_known = w3.published[&s.known_w3_key];
    let published_total = w1.published[&s.w1_key];
    let result = size_attack_with_known_cell(
        &s.dataset,
        s.victim,
        s.known_count as u32,
        published_known,
        published_total,
    );
    assert!(
        (result.recovered_size - result.true_size as f64).abs() < 1e-6,
        "SDL leaks the exact size: recovered {} vs true {}",
        result.recovered_size,
        result.true_size
    );
    // And the recovered factor matches the confidential assignment.
    let f_true = publisher.factors().factor(s.victim.0 as usize);
    assert!((result.recovered_factor - f_true).abs() < 1e-9);
}

#[test]
fn size_attack_fails_against_private_release() {
    let s = setup();
    let true_size = s.w1_truth.cell(s.w1_key).unwrap().count as f64;

    // Repeat the attack over many fresh private releases of both
    // marginals; the relative recovery error should be macroscopic
    // (comparable to the mechanisms' relative noise), not ~0 as with SDL.
    let mut rel_errors: Vec<f64> = (0..40u64)
        .map(|seed| {
            let w1 = engine_release(
                &s.dataset,
                &workload1(),
                MechanismKind::SmoothLaplace,
                PrivacyParams::approximate(0.1, 2.0, 0.05),
                seed,
            );
            let w3 = engine_release(
                &s.dataset,
                &workload3(),
                MechanismKind::SmoothLaplace,
                PrivacyParams::approximate(0.1, 16.0, 0.05),
                seed + 1000,
            );
            let published_known = w3[&s.known_w3_key];
            let published_total = w1[&s.w1_key];
            let result = size_attack_with_known_cell(
                &s.dataset,
                s.victim,
                s.known_count as u32,
                published_known,
                published_total,
            );
            (result.recovered_size - true_size).abs() / true_size
        })
        .collect();
    rel_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = rel_errors[rel_errors.len() / 2];
    assert!(
        median > 0.01,
        "factor-cancellation attack must not recover the size: median relative error {median}"
    );
}

#[test]
fn shape_ratios_are_exact_under_sdl_but_noisy_under_private_release() {
    let s = setup();
    let cfg = SdlConfig {
        round_output: false,
        ..SdlConfig::default()
    };
    let publisher = SdlPublisher::new(&s.dataset, cfg);
    let w3_truth = compute_marginal(&s.dataset, &workload3());

    // Collect the victim's published worker cells above the small-cell
    // limit under SDL: ratios must equal true ratios exactly.
    let wp_values = s.w1_truth.schema().decode(s.w1_key);
    let sdl_w3 = publisher.publish(&s.dataset, &workload3());
    let mut sdl_cells: Vec<(f64, f64)> = Vec::new(); // (published, true)
    for (key, stats) in w3_truth.iter() {
        let values = w3_truth.schema().decode(key);
        if values[..3] == wp_values[..] && stats.count as f64 >= cfg.small_cell.limit {
            sdl_cells.push((sdl_w3.published[&key], stats.count as f64));
        }
    }
    if sdl_cells.len() >= 2 {
        let (p0, t0) = sdl_cells[0];
        for &(p, t) in &sdl_cells[1..] {
            assert!(
                (p / p0 - t / t0).abs() < 1e-9,
                "SDL shape ratios must be exact: {}/{} vs {}/{}",
                p,
                p0,
                t,
                t0
            );
        }
    }

    // Under the private release the same ratios are noisy.
    let private = engine_release(
        &s.dataset,
        &workload3(),
        MechanismKind::SmoothGamma,
        PrivacyParams::pure(0.1, 16.0),
        17,
    );
    let mut priv_cells: Vec<(f64, f64)> = Vec::new();
    for (key, stats) in w3_truth.iter() {
        let values = w3_truth.schema().decode(key);
        if values[..3] == wp_values[..] && stats.count >= 3 {
            priv_cells.push((private[&key], stats.count as f64));
        }
    }
    if priv_cells.len() >= 2 {
        let (p0, t0) = priv_cells[0];
        let max_ratio_err = priv_cells[1..]
            .iter()
            .map(|&(p, t)| (p / p0 - t / t0).abs())
            .fold(0.0, f64::max);
        assert!(
            max_ratio_err > 1e-4,
            "private release must not preserve exact shape ratios: {max_ratio_err}"
        );
    }
}

#[test]
fn zero_preservation_attack_channel_quantified() {
    let s = setup();
    let spec = workload3();
    let truth = compute_marginal(&s.dataset, &spec);
    let sdl = SdlPublisher::new(&s.dataset, SdlConfig::default()).publish(&s.dataset, &spec);
    // SDL publishes exactly the nonzero support: absent cells are certain
    // zeros — the re-identification channel of Sec 5.2.
    assert_eq!(sdl.published.len(), truth.num_cells());

    // The private release also publishes the nonzero support, but small
    // cells carry macroscopic noise: count-1 cells cannot be told from
    // count-2 cells (the +1 neighbor step) within the epsilon bound.
    let release = engine_release(
        &s.dataset,
        &spec,
        MechanismKind::SmoothGamma,
        PrivacyParams::pure(0.1, 16.0),
        4,
    );
    let mut small_cell_errors = Vec::new();
    for (key, stats) in truth.iter() {
        if stats.count <= 2 {
            small_cell_errors.push((release[&key] - stats.count as f64).abs());
        }
    }
    assert!(!small_cell_errors.is_empty());
    let mean: f64 = small_cell_errors.iter().sum::<f64>() / small_cell_errors.len() as f64;
    assert!(
        mean > 0.5,
        "small cells must carry macroscopic noise, got mean {mean}"
    );

    // Ranking-2 slice integrity under the weak regime: slicing the sex x
    // education marginal agrees with a filtered tabulation.
    let sliced = truth.slice_worker_attrs(&[(WorkerAttr::Sex, 1), (WorkerAttr::Education, 3)]);
    let filtered = compute_marginal_filtered(&s.dataset, &workload1(), ranking2_filter);
    for (key, stats) in filtered.iter() {
        assert_eq!(sliced.get(&key).copied(), Some(stats.count));
    }
}
