//! Property-based round-trip tests for the CSV substrate.

use lodes::csv::{read_dataset, write_dataset};
use lodes::{Generator, GeneratorConfig};
use proptest::prelude::*;
use std::io::BufReader;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn csv_roundtrip_any_universe(
        seed in 0u64..1_000,
        states in 1u16..3,
        counties in 1u16..3,
        places in 2u16..6,
        target in 50usize..400,
    ) {
        let cfg = GeneratorConfig {
            seed,
            states,
            counties_per_state: counties,
            places_per_county: places,
            blocks_per_place: 2,
            target_establishments: target,
            ..GeneratorConfig::default()
        };
        let original = Generator::new(cfg).generate();
        let mut buf = Vec::new();
        write_dataset(&original, &mut buf).unwrap();
        let restored = read_dataset(BufReader::new(&buf[..])).unwrap();

        prop_assert_eq!(restored.num_jobs(), original.num_jobs());
        prop_assert_eq!(restored.num_workplaces(), original.num_workplaces());
        prop_assert_eq!(
            restored.establishment_sizes(),
            original.establishment_sizes()
        );
        // Tabulation-level equivalence on a workload-1 marginal.
        let a = tabulate::compute_marginal(&original, &tabulate::workload1());
        let b = tabulate::compute_marginal(&restored, &tabulate::workload1());
        prop_assert_eq!(a.num_cells(), b.num_cells());
        for ((ka, sa), (kb, sb)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(sa.count, sb.count);
            prop_assert_eq!(sa.max_establishment, sb.max_establishment);
        }
    }

    #[test]
    fn csv_roundtrip_is_idempotent(seed in 0u64..100) {
        let original = Generator::new(GeneratorConfig {
            target_establishments: 100,
            states: 1,
            counties_per_state: 1,
            places_per_county: 3,
            blocks_per_place: 2,
            seed,
            ..GeneratorConfig::default()
        })
        .generate();
        let mut first = Vec::new();
        write_dataset(&original, &mut first).unwrap();
        let restored = read_dataset(BufReader::new(&first[..])).unwrap();
        let mut second = Vec::new();
        write_dataset(&restored, &mut second).unwrap();
        prop_assert_eq!(first, second, "write(read(write(d))) == write(d)");
    }
}
