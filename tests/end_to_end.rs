//! End-to-end integration: generate → tabulate → release → evaluate,
//! across crates.

use eree::prelude::*;
use eree_core::neighbors::NeighborKind;

fn dataset() -> Dataset {
    Generator::new(GeneratorConfig::test_small(1001)).generate()
}

#[test]
fn full_pipeline_all_mechanisms_workload1() {
    let d = dataset();
    let spec = workload1();
    let truth = compute_marginal(&d, &spec);
    for (mechanism, budget) in [
        (MechanismKind::LogLaplace, PrivacyParams::pure(0.1, 2.0)),
        (MechanismKind::SmoothGamma, PrivacyParams::pure(0.1, 2.0)),
        (
            MechanismKind::SmoothLaplace,
            PrivacyParams::approximate(0.1, 2.0, 0.05),
        ),
    ] {
        let release = release_marginal(
            &d,
            &spec,
            &ReleaseConfig {
                mechanism,
                budget,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(release.regime, NeighborKind::Strong);
        assert_eq!(release.published.len(), truth.num_cells());
        assert!(release.l1_error() > 0.0, "{mechanism:?} must add noise");
        // Totals approximately preserved (mechanisms are unbiased or
        // mildly biased): released total within 25% of truth.
        let released_total: f64 = release.published.values().sum();
        let true_total = truth.total() as f64;
        assert!(
            (released_total - true_total).abs() < 0.25 * true_total,
            "{mechanism:?}: released total {released_total} vs {true_total}"
        );
    }
}

#[test]
fn weak_release_costs_match_domain_size() {
    let d = dataset();
    let release = release_marginal(
        &d,
        &workload3(),
        &ReleaseConfig {
            mechanism: MechanismKind::SmoothLaplace,
            budget: PrivacyParams::approximate(0.1, 8.0, 0.08),
            seed: 9,
        },
    )
    .unwrap();
    assert_eq!(release.regime, NeighborKind::Weak);
    assert_eq!(release.cost.multiplier, 8);
    assert!((release.cost.per_cell_epsilon - 1.0).abs() < 1e-12);
    assert!((release.cost.epsilon - 8.0).abs() < 1e-12);
}

#[test]
fn filtered_release_is_weak_but_parallel() {
    let d = dataset();
    let release = eree_core::release::release_marginal_filtered(
        &d,
        &workload1(),
        &ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 12,
        },
        ranking2_filter,
    )
    .unwrap();
    // Worker-predicate filter forces the weak regime...
    assert_eq!(release.regime, NeighborKind::Weak);
    // ...but cells still partition establishments: multiplier 1.
    assert_eq!(release.cost.multiplier, 1);
    // Filtered totals are a strict subset of employment.
    assert!(release.truth.total() < compute_marginal(&d, &workload1()).total());
}

#[test]
fn private_release_error_tracks_analytic_expectation() {
    // Cross-crate consistency: the empirical mean L1 per cell should be
    // close to the average of the mechanism's analytic per-cell E|noise|.
    use eree_core::{CellQuery, CountMechanism};
    let d = dataset();
    let spec = workload1();
    let truth = compute_marginal(&d, &spec);
    let mech = eree_core::mechanisms::SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).unwrap();
    let analytic_total: f64 = truth
        .iter()
        .map(|(_, s)| mech.expected_l1(&CellQuery::from_stats(s)).unwrap())
        .sum();

    // Average over several releases.
    let trials = 30;
    let mut total = 0.0;
    for seed in 0..trials {
        let release = release_marginal(
            &d,
            &spec,
            &ReleaseConfig {
                mechanism: MechanismKind::SmoothLaplace,
                budget: PrivacyParams::approximate(0.1, 2.0, 0.05),
                seed,
            },
        )
        .unwrap();
        total += release.l1_error();
    }
    let empirical = total / trials as f64;
    assert!(
        (empirical - analytic_total).abs() / analytic_total < 0.15,
        "empirical {empirical} vs analytic {analytic_total}"
    );
}

#[test]
fn sdl_and_private_releases_share_support() {
    let d = dataset();
    let spec = workload1();
    let sdl = SdlPublisher::new(&d, SdlConfig::default()).publish(&d, &spec);
    let private = release_marginal(
        &d,
        &spec,
        &ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 1,
        },
    )
    .unwrap();
    let sdl_keys: Vec<_> = sdl.published.keys().collect();
    let private_keys: Vec<_> = private.published.keys().collect();
    assert_eq!(sdl_keys, private_keys, "same published support");
}

#[test]
fn paper_scale_config_is_calibrated() {
    // Don't generate the full paper-scale universe in tests; check the
    // target arithmetic instead.
    let cfg = GeneratorConfig::paper_scale(1);
    assert_eq!(cfg.target_establishments, 527_000);
    assert_eq!(cfg.states, 3);
}
