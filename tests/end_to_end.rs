//! End-to-end integration: generate → tabulate → release → evaluate,
//! across crates, through the ledger-enforced `ReleaseEngine`.

use eree::prelude::*;
use eree_core::neighbors::NeighborKind;

fn dataset() -> Dataset {
    Generator::new(GeneratorConfig::test_small(1001)).generate()
}

#[test]
fn full_pipeline_all_mechanisms_workload1() {
    let d = dataset();
    let spec = workload1();
    let truth = compute_marginal(&d, &spec);
    // One engine batch releases all three mechanisms under a shared ledger.
    let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 6.0, 0.05));
    let batch = vec![
        ReleaseRequest::marginal(spec.clone())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(5),
        ReleaseRequest::marginal(spec.clone())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(5),
        ReleaseRequest::marginal(spec.clone())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 2.0, 0.05))
            .seed(5),
    ];
    for outcome in engine.execute_all(&d, &batch) {
        let artifact = outcome.unwrap();
        assert_eq!(artifact.regime, NeighborKind::Strong);
        let cells = artifact.cells().expect("marginal payload");
        assert_eq!(cells.len(), truth.num_cells());
        let l1 = artifact.l1_error_against(&truth).unwrap();
        assert!(l1 > 0.0, "{} must add noise", artifact.mechanism_name);
        // Totals approximately preserved (mechanisms are unbiased or
        // mildly biased): released total within 25% of truth.
        let released_total: f64 = cells.values().sum();
        let true_total = truth.total() as f64;
        assert!(
            (released_total - true_total).abs() < 0.25 * true_total,
            "{}: released total {released_total} vs {true_total}",
            artifact.mechanism_name
        );
    }
    // The whole session is accounted on one ledger.
    assert!(engine.ledger().remaining_epsilon() < 1e-9);
}

#[test]
fn weak_release_costs_match_domain_size() {
    let d = dataset();
    let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 8.0, 0.08));
    let artifact = engine
        .execute(
            &d,
            &ReleaseRequest::marginal(workload3())
                .mechanism(MechanismKind::SmoothLaplace)
                .budget(PrivacyParams::approximate(0.1, 8.0, 0.08))
                .seed(9),
        )
        .unwrap();
    assert_eq!(artifact.regime, NeighborKind::Weak);
    assert_eq!(artifact.cost.multiplier, 8);
    assert!((artifact.cost.per_cell_epsilon - 1.0).abs() < 1e-12);
    assert!((artifact.cost.epsilon - 8.0).abs() < 1e-12);
}

#[test]
fn filtered_release_is_weak_but_parallel() {
    let d = dataset();
    let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
    let artifact = engine
        .execute(
            &d,
            &ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .filter_expr(ranking2_expr())
                .seed(12),
        )
        .unwrap();
    // Worker-predicate filter forces the weak regime...
    assert_eq!(artifact.regime, NeighborKind::Weak);
    assert!(artifact.request.filtered);
    // ...and the declarative filter is recorded in provenance.
    assert_eq!(artifact.request.filter_id(), Some(ranking2_expr().id()));
    // ...but cells still partition establishments: multiplier 1.
    assert_eq!(artifact.cost.multiplier, 1);
    // Filtered totals are a strict subset of employment.
    let filtered_truth = compute_marginal_filtered(&d, &workload1(), ranking2_filter);
    assert!(filtered_truth.total() < compute_marginal(&d, &workload1()).total());
    assert_eq!(
        artifact.cells().unwrap().len(),
        filtered_truth.num_cells(),
        "engine tabulates the filtered population"
    );
}

#[test]
#[allow(deprecated)]
fn deprecated_wrappers_still_work() {
    // The legacy free functions survive as thin wrappers over the engine.
    let d = dataset();
    let release = release_marginal(
        &d,
        &workload1(),
        &ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 5,
        },
    )
    .unwrap();
    assert_eq!(release.regime, NeighborKind::Strong);
    assert_eq!(
        release.published.len(),
        compute_marginal(&d, &workload1()).num_cells()
    );

    let filtered = release_marginal_filtered(
        &d,
        &workload1(),
        &ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 12,
        },
        ranking2_filter,
    )
    .unwrap();
    assert_eq!(filtered.regime, NeighborKind::Weak);
    assert_eq!(filtered.cost.multiplier, 1);
}

#[test]
fn private_release_error_tracks_analytic_expectation() {
    // Cross-crate consistency: the empirical mean L1 per cell should be
    // close to the average of the mechanism's analytic per-cell E|noise|.
    use eree_core::{CellQuery, CountMechanism};
    let d = dataset();
    let spec = workload1();
    let truth = compute_marginal(&d, &spec);
    let mech = eree_core::mechanisms::SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).unwrap();
    let analytic_total: f64 = truth
        .iter()
        .map(|(_, s)| mech.expected_l1(&CellQuery::from_stats(s)).unwrap())
        .sum();

    // Average over several releases.
    let trials = 30;
    let mut total = 0.0;
    for seed in 0..trials {
        let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 2.0, 0.05));
        let artifact = engine
            .execute_precomputed(
                &truth,
                &ReleaseRequest::marginal(spec.clone())
                    .mechanism(MechanismKind::SmoothLaplace)
                    .budget(PrivacyParams::approximate(0.1, 2.0, 0.05))
                    .seed(seed),
            )
            .unwrap();
        total += artifact.l1_error_against(&truth).unwrap();
    }
    let empirical = total / trials as f64;
    assert!(
        (empirical - analytic_total).abs() / analytic_total < 0.15,
        "empirical {empirical} vs analytic {analytic_total}"
    );
}

#[test]
fn sdl_and_private_releases_share_support() {
    let d = dataset();
    let spec = workload1();
    let sdl = SdlPublisher::new(&d, SdlConfig::default()).publish(&d, &spec);
    let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
    let artifact = engine
        .execute(
            &d,
            &ReleaseRequest::marginal(spec.clone())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .seed(1),
        )
        .unwrap();
    let sdl_keys: Vec<_> = sdl.published.keys().collect();
    let private_keys: Vec<_> = artifact.cells().unwrap().keys().collect();
    assert_eq!(sdl_keys, private_keys, "same published support");
}

#[test]
fn paper_scale_config_is_calibrated() {
    // Don't generate the full paper-scale universe in tests; check the
    // target arithmetic instead.
    let cfg = GeneratorConfig::paper_scale(1);
    assert_eq!(cfg.target_establishments, 527_000);
    assert_eq!(cfg.states, 3);
}
