//! Integration coverage for the `ReleaseEngine`: ledger-enforced batch
//! semantics, artifact serialization, and determinism under parallelism.

use eree::prelude::*;

fn dataset() -> Dataset {
    Generator::new(GeneratorConfig::test_small(5005)).generate()
}

#[test]
fn rejection_ordering_consumes_no_budget() {
    let d = dataset();
    let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));

    // A request that fails mechanism validation: nothing spent, nothing
    // recorded.
    let err = engine
        .execute(
            &d,
            &ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 0.3))
                .seed(1),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidParameters { .. }));
    assert!((engine.ledger().remaining_epsilon() - 4.0).abs() < 1e-12);
    assert!(engine.ledger().entries().is_empty());

    // A request that overdraws: rejected before sampling, nothing spent.
    let err = engine
        .execute(
            &d,
            &ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 5.0))
                .seed(2),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::Budget(_)));
    assert!((engine.ledger().remaining_epsilon() - 4.0).abs() < 1e-12);

    // An under-specified request is caught before everything else.
    let err = engine
        .execute(&d, &ReleaseRequest::marginal(workload1()).seed(3))
        .unwrap_err();
    assert!(matches!(err, EngineError::IncompleteRequest { .. }));

    // The budget is still fully available for a valid request.
    assert!(engine
        .execute(
            &d,
            &ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 4.0))
                .seed(4),
        )
        .is_ok());
    assert!(engine.ledger().remaining_epsilon() < 1e-9);
}

#[test]
fn artifact_json_roundtrip_is_lossless() {
    let d = dataset();
    let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 26.0, 0.05));
    let batch = vec![
        // Marginal with integerization and a declarative filter (its
        // expression must survive the JSON round-trip in provenance).
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .filter_expr(ranking2_expr())
            .integerize(true)
            .describe("filtered integerized W1")
            .seed(11),
        // Weak-regime full marginal.
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 8.0))
            .seed(12),
        // Shapes release.
        ReleaseRequest::shapes(workload3())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 16.0, 0.05))
            .seed(13),
    ];
    for outcome in engine.execute_all(&d, &batch) {
        let artifact = outcome.unwrap();
        let json = serde_json::to_string_pretty(&artifact).unwrap();
        let back: ReleaseArtifact = serde_json::from_str(&json).unwrap();
        assert_eq!(back, artifact, "JSON round-trip must be lossless");
        // Spot-check provenance survived.
        assert_eq!(back.request.seed, artifact.request.seed);
        assert_eq!(back.mechanism_name, artifact.mechanism_name);
        assert_eq!(back.cost, artifact.cost);
        // Compact form round-trips too.
        let compact = serde_json::to_string(&artifact).unwrap();
        let back: ReleaseArtifact = serde_json::from_str(&compact).unwrap();
        assert_eq!(back, artifact);
    }
}

#[test]
fn execute_all_deterministic_for_any_thread_count() {
    let d = dataset();
    let requests = vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(21),
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 8.0))
            .seed(22),
        ReleaseRequest::shapes(workload3())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 16.0, 0.05))
            .seed(23),
    ];
    let run = |threads: usize| {
        let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 26.0, 0.05))
            .with_parallelism(threads);
        engine
            .execute_all(&d, &requests)
            .into_iter()
            .map(|o| o.unwrap())
            .collect::<Vec<_>>()
    };
    let baseline = run(1);
    for threads in [2, 4, 16] {
        assert_eq!(run(threads), baseline, "threads={threads}");
    }
    // Serialized forms are bit-identical as well.
    let a = serde_json::to_string(&baseline).unwrap();
    let b = serde_json::to_string(&run(8)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn indexed_artifacts_bit_identical_to_legacy_tabulation() {
    // The CSR-index engine replaced the legacy per-worker tabulation
    // under every release path; per-cell noise depends only on
    // (seed, cell key), so artifacts must be bit-identical to ones
    // sampled from a legacy-tabulated truth — at any thread count.
    use tabulate::{compute_marginal_filtered_legacy, compute_marginal_legacy, ranking2_filter};
    let d = dataset();
    let request = |seed: u64| {
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 8.0))
            .seed(seed)
    };
    let legacy_truth = compute_marginal_legacy(&d, &workload3());
    for threads in [1, 2, 8] {
        let mut via_legacy =
            ReleaseEngine::new(PrivacyParams::pure(0.1, 8.0)).with_parallelism(threads);
        let mut via_index =
            ReleaseEngine::new(PrivacyParams::pure(0.1, 8.0)).with_parallelism(threads);
        let a = via_legacy
            .execute_precomputed(&legacy_truth, &request(77))
            .unwrap();
        let b = via_index.execute(&d, &request(77)).unwrap();
        assert_eq!(a, b, "threads={threads}");
    }
    // Filtered releases agree too (weak-regime single-query workload):
    // the declarative filter's tabulation must match the legacy
    // brute-force engine driven by the equivalent closure.
    let filtered_truth = compute_marginal_filtered_legacy(&d, &workload1(), ranking2_filter);
    let filtered_request = ReleaseRequest::marginal(workload1())
        .filter_expr(ranking2_expr())
        .mechanism(MechanismKind::LogLaplace)
        .budget(PrivacyParams::pure(0.1, 2.0))
        .seed(78);
    let mut via_legacy = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
    let mut via_index = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
    let a = via_legacy
        .execute_precomputed(&filtered_truth, &filtered_request)
        .unwrap();
    let b = via_index.execute(&d, &filtered_request).unwrap();
    assert_eq!(a, b);
}

#[test]
fn production_artifacts_carry_no_truth_digest() {
    // Nothing in the default workspace build enables eree_core's
    // `eval-only` feature, so artifacts from the facade must NOT embed
    // truth digests (they fingerprint the unnoised data). The digest
    // path is covered by `cargo test -p eree_core --features eval-only`.
    let d = dataset();
    let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
    let artifact = engine
        .execute(
            &d,
            &ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .seed(31),
        )
        .unwrap();
    assert_eq!(artifact.truth_digest, None);
    // And the serialized artifact doesn't smuggle it either.
    let json = serde_json::to_string(&artifact).unwrap();
    assert!(json.contains("\"truth_digest\":null"));
}
