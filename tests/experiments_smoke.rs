//! Smoke tests for the full experiment harness: run every figure/table at
//! small scale with a couple of trials and check structural properties of
//! the regenerated series.

use eval::experiments::{figure1, figure2, figure3, figure4, figure5, table1, table2};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};

fn ctx_and_trials() -> (ExperimentContext, TrialSpec) {
    (
        ExperimentContext::with_seed(EvalScale::Small, 3),
        TrialSpec {
            trials: 2,
            base_seed: 0xABCD,
        },
    )
}

#[test]
fn all_figures_regenerate() {
    let (ctx, trials) = ctx_and_trials();

    let f1 = figure1::run(&ctx, &trials);
    assert!(f1.len() > 50, "figure 1 rows: {}", f1.len());
    assert!(f1
        .iter()
        .all(|r| r.l1_ratio.is_finite() && r.l1_ratio > 0.0));

    let f2 = figure2::run(&ctx, &trials);
    assert!(f2.len() > 50);
    assert!(f2.iter().all(|r| (-1.0..=1.0).contains(&r.spearman)));

    let f3 = figure3::run(&ctx, &trials);
    assert!(f3.len() > 50);

    let f4 = figure4::run(&ctx, &trials);
    assert!(f4.len() > 50);

    let f5 = figure5::run(&ctx, &trials);
    assert!(f5.len() > 50);

    // Structural cross-figure check: figures 1 and 2 cover the same
    // mechanism grid points (same plottability filter).
    let f1_points: std::collections::BTreeSet<String> = f1
        .iter()
        .filter(|r| r.stratum == "overall" && !r.series.starts_with("Truncated"))
        .map(|r| format!("{}|{}|{}", r.series, r.alpha, r.epsilon))
        .collect();
    let f2_points: std::collections::BTreeSet<String> = f2
        .iter()
        .filter(|r| r.stratum == "overall" && !r.series.starts_with("Truncated"))
        .map(|r| format!("{}|{}|{}", r.series, r.alpha, r.epsilon))
        .collect();
    assert_eq!(f1_points, f2_points);
}

#[test]
fn tables_regenerate_and_match_paper() {
    let t1 = table1::run();
    assert_eq!(t1.len(), 5);
    assert!(table1::matches_paper());
    for (claim, ok) in table1::verify() {
        assert!(ok, "verification failed: {claim}");
    }

    let t2 = table2::run();
    assert_eq!(t2.len(), 6);
    for row in &t2 {
        assert!(row.epsilon_min > 0.0);
    }
}

#[test]
fn figure1_strata_show_size_gradient() {
    // Finding 4: performance improves with population size. At small scale
    // the gradient is noisy; require only that the largest stratum is not
    // the worst one for the best mechanism at the baseline point.
    let (ctx, trials) = ctx_and_trials();
    let rows = figure1::run(&ctx, &trials);
    let pick = |stratum: &str| {
        rows.iter()
            .find(|r| {
                r.series == "Smooth Laplace"
                    && r.alpha == 0.1
                    && r.epsilon == 2.0
                    && r.stratum == stratum
            })
            .map(|r| r.l1_ratio)
    };
    let small = pick("0 <= pop < 100");
    let large = pick("pop >= 100k");
    if let (Some(small), Some(large)) = (small, large) {
        assert!(
            large < small * 3.0,
            "largest stratum ratio {large} should not dwarf smallest {small}"
        );
    }
}

#[test]
fn deterministic_experiment_replay() {
    // The same context + trial spec must reproduce identical series.
    let (ctx, trials) = ctx_and_trials();
    let a = figure1::run(&ctx, &trials);
    let b = figure1::run(&ctx, &trials);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.series, y.series);
        assert_eq!(x.l1_ratio, y.l1_ratio);
    }
}
