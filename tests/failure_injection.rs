//! Failure injection: every construction path must reject invalid inputs
//! loudly and precisely — never degrade to a weaker guarantee silently.

use eree::prelude::*;
use eree_core::mechanisms::{LogLaplaceMechanism, SmoothGammaMechanism, SmoothLaplaceMechanism};
use eree_core::release::ReleaseError;
use noise::{GammaPoly, Laplace, LogLaplace};

// ---- noise layer -----------------------------------------------------

#[test]
fn distributions_reject_degenerate_scales() {
    assert!(Laplace::new(0.0).is_err());
    assert!(Laplace::new(f64::NEG_INFINITY).is_err());
    assert!(GammaPoly::new(-1.0).is_err());
    assert!(GammaPoly::new(f64::NAN).is_err());
    assert!(LogLaplace::new(0.0, 1.0).is_err());
    assert!(LogLaplace::new(10.0, f64::INFINITY).is_err());
}

#[test]
#[should_panic(expected = "quantile requires p in (0,1)")]
fn laplace_quantile_rejects_boundary() {
    Laplace::new(1.0).unwrap().quantile(1.0);
}

#[test]
#[should_panic(expected = "quantile requires p in (0,1)")]
fn gamma_poly_quantile_rejects_boundary() {
    GammaPoly::standard().quantile(0.0);
}

// ---- mechanism layer --------------------------------------------------

#[test]
fn mechanisms_reject_invalid_privacy_parameters() {
    // Smooth Gamma: alpha + 1 >= e^{eps/5}.
    assert!(SmoothGammaMechanism::new(0.3, 1.0).is_none());
    // Smooth Laplace: alpha + 1 > e^{eps/(2 ln(1/delta))}.
    assert!(SmoothLaplaceMechanism::new(0.2, 0.5, 5e-4).is_none());
    // delta outside (0,1) panics.
    let r = std::panic::catch_unwind(|| SmoothLaplaceMechanism::new(0.1, 1.0, 0.0));
    assert!(r.is_err());
    let r = std::panic::catch_unwind(|| SmoothLaplaceMechanism::new(0.1, 1.0, 1.0));
    assert!(r.is_err());
    // Log-Laplace: nonpositive alpha/epsilon panic.
    let r = std::panic::catch_unwind(|| LogLaplaceMechanism::new(-0.1, 1.0));
    assert!(r.is_err());
    let r = std::panic::catch_unwind(|| LogLaplaceMechanism::new(0.1, 0.0));
    assert!(r.is_err());
    // Bias correction demands a finite expectation (lambda < 1).
    let r = std::panic::catch_unwind(|| LogLaplaceMechanism::new(0.2, 0.25).with_bias_correction());
    assert!(r.is_err(), "lambda >= 1 must refuse bias correction");
}

// ---- release layer ----------------------------------------------------

#[test]
fn release_surfaces_structured_errors() {
    let d = Generator::new(GeneratorConfig::test_small(4040)).generate();
    // Per-cell budget after the weak split is too small for Smooth Gamma;
    // the engine rejects before charging anything.
    let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.2, 2.0));
    let err = engine
        .execute(
            &d,
            &ReleaseRequest::marginal(workload3())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.2, 2.0))
                .seed(1),
        )
        .unwrap_err();
    match err {
        EngineError::InvalidParameters {
            per_cell_epsilon, ..
        } => {
            assert!((per_cell_epsilon - 0.25).abs() < 1e-12, "2.0 / 8 cells");
        }
        other => panic!("expected InvalidParameters, got {other:?}"),
    }
    assert!((engine.ledger().remaining_epsilon() - 2.0).abs() < 1e-12);

    // The deprecated wrapper surfaces the same failure as its legacy type.
    #[allow(deprecated)]
    let err = release_marginal(
        &d,
        &workload3(),
        &ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.2, 2.0),
            seed: 1,
        },
    )
    .unwrap_err();
    match err {
        ReleaseError::InvalidParameters {
            per_cell_epsilon, ..
        } => {
            assert!((per_cell_epsilon - 0.25).abs() < 1e-12, "2.0 / 8 cells");
        }
    }
}

#[test]
fn ledger_never_goes_negative_under_racing_charges() {
    use eree_core::accountant::ReleaseCost;
    use eree_core::neighbors::NeighborKind;
    let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 1.0));
    let params = PrivacyParams::pure(0.1, 0.4);
    let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Strong);
    assert!(ledger.charge("a", &params, &cost).is_ok());
    assert!(ledger.charge("b", &params, &cost).is_ok());
    assert!(ledger.charge("c", &params, &cost).is_err());
    assert!(ledger.remaining_epsilon() >= 0.0);
    assert_eq!(ledger.entries().len(), 2, "failed charge must not record");
}

// ---- tabulation layer ---------------------------------------------------

#[test]
fn overlapping_areas_are_rejected_with_witness() {
    use lodes::PlaceId;
    use tabulate::{area_comparison, AreaSelection};
    let d = Generator::new(GeneratorConfig::test_small(4041)).generate();
    let areas = vec![
        AreaSelection::new("east", [PlaceId(0), PlaceId(1)]),
        AreaSelection::new("west", [PlaceId(1), PlaceId(2)]),
    ];
    let err = area_comparison(&d, &areas).unwrap_err();
    assert_eq!(err.place, PlaceId(1));
}

#[test]
fn shape_release_rejects_without_partition() {
    use eree_core::ShapeError;
    let d = Generator::new(GeneratorConfig::test_small(4042)).generate();
    let truth = compute_marginal(&d, &workload1());
    // Engine path: the unified error wraps the shape failure.
    let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 8.0, 0.05));
    let err = engine
        .execute_precomputed(
            &truth,
            &ReleaseRequest::shapes(workload1())
                .mechanism(MechanismKind::SmoothLaplace)
                .budget(PrivacyParams::approximate(0.1, 8.0, 0.05))
                .seed(1),
        )
        .unwrap_err();
    assert_eq!(err, EngineError::Shape(ShapeError::NoWorkerAttributes));
    // Deprecated wrapper path: the legacy error type survives.
    #[allow(deprecated)]
    let err = release_shapes(
        &truth,
        MechanismKind::SmoothLaplace,
        &PrivacyParams::approximate(0.1, 8.0, 0.05),
        1,
    )
    .unwrap_err();
    assert_eq!(err, ShapeError::NoWorkerAttributes);
}

// ---- SDL layer -----------------------------------------------------------

#[test]
fn sdl_parameter_validation() {
    use sdl::{DistortionParams, FuzzDistribution, SmallCellModel};
    for (s, t) in [(0.0, 0.1), (0.1, 0.1), (0.2, 0.1), (0.5, 1.5)] {
        let r = std::panic::catch_unwind(|| DistortionParams::new(s, t, FuzzDistribution::Ramp));
        assert!(r.is_err(), "(s={s}, t={t}) must be rejected");
    }
    let r = std::panic::catch_unwind(|| SmallCellModel::new(2.5, 0.0));
    assert!(r.is_err());
    let r = std::panic::catch_unwind(|| SmallCellModel::new(2.5, 1.5));
    assert!(r.is_err());
}

// ---- graph-DP layer --------------------------------------------------------

#[test]
fn graphdp_parameter_validation() {
    use graphdp::{EdgeLaplace, TruncatedLaplace};
    assert!(std::panic::catch_unwind(|| EdgeLaplace::new(-1.0)).is_err());
    assert!(std::panic::catch_unwind(|| TruncatedLaplace::new(0, 1.0)).is_err());
    assert!(std::panic::catch_unwind(|| TruncatedLaplace::new(10, f64::NAN)).is_err());
    let m = EdgeLaplace::new(1.0);
    assert!(std::panic::catch_unwind(|| m.size_disclosure_band(0.0)).is_err());
    assert!(std::panic::catch_unwind(|| m.size_disclosure_band(1.0)).is_err());
}

// ---- panel layer ------------------------------------------------------------

#[test]
fn panel_parameter_validation() {
    use lodes::{DatasetPanel, PanelConfig};
    let base = GeneratorConfig::test_small(1);
    for cfg in [
        PanelConfig {
            quarters: 0,
            ..PanelConfig::default()
        },
        PanelConfig {
            growth_sigma: 1.5,
            ..PanelConfig::default()
        },
        PanelConfig {
            death_rate: 1.0,
            ..PanelConfig::default()
        },
    ] {
        let base = base.clone();
        let r = std::panic::catch_unwind(move || DatasetPanel::generate(&base, &cfg));
        assert!(r.is_err(), "config {cfg:?} must be rejected");
    }
}
