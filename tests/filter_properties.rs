//! Property tests for the declarative filter AST: serde round-trips
//! preserve structure and identity ([`FilterId`]), and the compiled form
//! agrees bit-for-bit with the reference record semantics — and therefore
//! with the equivalent closure filter — on randomly generated expressions.

use eree::prelude::*;
use lodes::Worker;
use proptest::prelude::*;
use std::sync::OnceLock;
use tabulate::{Cmp, FilterExpr};

fn dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| Generator::new(GeneratorConfig::test_small(77)).generate())
}

/// SplitMix64 step: the deterministic source the expression generator
/// draws from (the vendored proptest has no recursive strategies, so
/// expressions are derived from one sampled seed).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const CMPS: [Cmp; 6] = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];

const WORKER_ATTRS: [(WorkerAttr, u32); 5] = [
    (WorkerAttr::Sex, 2),
    (WorkerAttr::Age, 8),
    (WorkerAttr::Race, 6),
    (WorkerAttr::Ethnicity, 2),
    (WorkerAttr::Education, 4),
];

// Cardinalities here are upper bounds loose enough to also generate
// out-of-range codes (which must simply never match).
const WORKPLACE_ATTRS: [(WorkplaceAttr, u32); 6] = [
    (WorkplaceAttr::State, 4),
    (WorkplaceAttr::County, 8),
    (WorkplaceAttr::Place, 40),
    (WorkplaceAttr::Block, 200),
    (WorkplaceAttr::Naics, 20),
    (WorkplaceAttr::Ownership, 4),
];

/// A random expression of depth ≤ `depth`, biased toward leaves.
fn random_expr(state: &mut u64, depth: u32) -> FilterExpr {
    let choice = if depth == 0 {
        next(state) % 5
    } else {
        next(state) % 8
    };
    match choice {
        0 => FilterExpr::All,
        1 => {
            let (attr, card) = WORKER_ATTRS[(next(state) % 5) as usize];
            let cmp = CMPS[(next(state) % 6) as usize];
            FilterExpr::WorkerCmp(attr, cmp, next(state) as u32 % (card + 2))
        }
        2 => {
            let (attr, card) = WORKER_ATTRS[(next(state) % 5) as usize];
            let len = next(state) % 4;
            let values = (0..len).map(|_| next(state) as u32 % (card + 2)).collect();
            FilterExpr::WorkerIn(attr, values)
        }
        3 => {
            let (attr, card) = WORKPLACE_ATTRS[(next(state) % 6) as usize];
            let cmp = CMPS[(next(state) % 6) as usize];
            FilterExpr::WorkplaceCmp(attr, cmp, next(state) as u32 % (card + 2))
        }
        4 => {
            let (attr, card) = WORKPLACE_ATTRS[(next(state) % 6) as usize];
            let len = next(state) % 4;
            let values = (0..len).map(|_| next(state) as u32 % (card + 2)).collect();
            FilterExpr::WorkplaceIn(attr, values)
        }
        5 | 6 => {
            let n = next(state) % 3 + 1;
            let ops = (0..n).map(|_| random_expr(state, depth - 1)).collect();
            if choice == 5 {
                FilterExpr::And(ops)
            } else {
                FilterExpr::Or(ops)
            }
        }
        _ => random_expr(state, depth - 1).not(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serde_round_trip_preserves_structure_and_id(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let expr = random_expr(&mut state, 3);
        let json = serde_json::to_string(&expr).unwrap();
        let back: FilterExpr = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &expr);
        prop_assert_eq!(back.id(), expr.id());
        // Pretty-printing round-trips identically too (the store persists
        // pretty JSON).
        let pretty = serde_json::to_string_pretty(&expr).unwrap();
        let back: FilterExpr = serde_json::from_str(&pretty).unwrap();
        prop_assert_eq!(back.id(), expr.id());
    }

    #[test]
    fn compiled_filter_agrees_with_record_semantics(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let expr = random_expr(&mut state, 3);
        let d = dataset();
        let index = TabulationIndex::build(d);
        let compiled = expr.compile(&index);
        for worker in d.workers() {
            let wp = d.workplace(d.employer_of(worker.id));
            prop_assert_eq!(
                compiled.matches(worker),
                expr.matches_record(worker, wp),
                "compiled and reference semantics disagree for {:?}",
                &expr
            );
        }
    }

    #[test]
    fn expr_marginal_equals_equivalent_closure_marginal(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let expr = random_expr(&mut state, 2);
        let d = dataset();
        let spec = workload1();
        let via_expr = compute_marginal_expr(d, &spec, &expr);
        let closure = |w: &Worker| {
            let wp = d.workplace(d.employer_of(w.id));
            expr.matches_record(w, wp)
        };
        let via_closure = compute_marginal_filtered(d, &spec, closure);
        prop_assert_eq!(via_expr.num_cells(), via_closure.num_cells());
        prop_assert_eq!(via_expr.total(), via_closure.total());
        for ((ka, sa), (kb, sb)) in via_expr.iter().zip(via_closure.iter()) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(sa, sb);
        }
    }
}
