//! Private release of QWI-style job flows through the release engine:
//! `ReleaseRequest::flows` prices and noises B, JC, JD per cell with the
//! per-flow maximum establishment contribution driving the noise scale,
//! and derives E = B + JC − JD as free post-processing.

use eree::prelude::*;
use eree_core::{CellQuery, CountMechanism, Ledger, SmoothLaplaceMechanism};
use lodes::{DatasetPanel, PanelConfig};
use std::collections::BTreeMap;
use tabulate::WorkplaceAttr;

fn panel() -> DatasetPanel {
    DatasetPanel::generate(
        &GeneratorConfig::test_small(5050),
        &PanelConfig {
            quarters: 2,
            growth_sigma: 0.12,
            death_rate: 0.03,
            seed: 29,
        },
    )
}

/// One engine-mediated flow release of `truth` at per-cell
/// (α=0.1, ε, δ=0.05) Smooth Laplace, on a ledger holding exactly the
/// request's priced cost.
fn release_flows(truth: &FlowMarginal, epsilon: f64, seed: u64) -> BTreeMap<CellKey, FlowRelease> {
    let request = ReleaseRequest::flows(truth.spec().clone())
        .mechanism(MechanismKind::SmoothLaplace)
        .budget_per_cell(PrivacyParams::approximate(0.1, epsilon, 0.05))
        .seed(seed);
    let plan = request.plan().expect("valid flow request");
    let mut engine = ReleaseEngine::with_ledger(Ledger::new(PrivacyParams {
        alpha: 0.1,
        epsilon: plan.cost.epsilon,
        delta: plan.cost.delta,
    }));
    let artifact = engine
        .execute_flows_precomputed(truth, &request)
        .expect("exact ledger covers the request");
    match artifact.payload {
        ArtifactPayload::Flows(flows) => flows,
        _ => unreachable!("flow request yields flows"),
    }
}

#[test]
fn private_flow_release_tracks_truth() {
    let p = panel();
    let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
    let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);

    // Average over engine releases (distinct seeds, fresh noise each) to
    // beat noise in the test.
    let n = 200;
    let mut sums: BTreeMap<CellKey, f64> = BTreeMap::new();
    for seed in 0..n {
        for (key, release) in release_flows(&flows, 2.0, seed) {
            *sums.entry(key).or_insert(0.0) += release.job_creation;
        }
    }

    let mut total_rel_err = 0.0;
    let mut cells = 0usize;
    for (key, stats) in flows.iter() {
        if stats.job_creation < 20 {
            continue;
        }
        let mean = sums[&key] / n as f64;
        total_rel_err += (mean - stats.job_creation as f64).abs() / stats.job_creation as f64;
        cells += 1;
    }
    assert!(cells >= 3, "need cells with substantial creation");
    let mean_rel_err = total_rel_err / cells as f64;
    assert!(
        mean_rel_err < 0.1,
        "averaged releases should track true creation: {mean_rel_err}"
    );
}

#[test]
fn flow_noise_scales_with_flow_concentration_not_level() {
    // A cell whose creation is spread across many establishments gets far
    // less noise than its employment level would suggest: the flow x_v is
    // the largest single-establishment *gain*, not the largest
    // establishment. The tabulated `FlowStats` carry exactly the per-flow
    // maxima the engine prices against.
    let p = panel();
    let spec = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]);
    let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
    let levels = compute_marginal(p.quarter(0), &spec);

    let mech = SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).unwrap();
    let mut checked = 0;
    for (key, stats) in flows.iter() {
        let Some(level) = levels.cell(key) else {
            continue;
        };
        if stats.job_creation == 0 || level.count < 100 {
            continue;
        }
        let flow_q = CellQuery {
            count: stats.job_creation,
            max_establishment: stats.max_creation,
        };
        let level_q = CellQuery::from_stats(level);
        let flow_noise = mech.expected_l1(&flow_q).unwrap();
        let level_noise = mech.expected_l1(&level_q).unwrap();
        assert!(
            flow_noise <= level_noise + 1e-9,
            "flow x_v {} <= level x_v {} must give no more noise",
            stats.max_creation,
            level.max_establishment
        );
        checked += 1;
    }
    assert!(checked > 5, "need comparable cells, got {checked}");
}

#[test]
fn net_change_consistency_survives_release() {
    // The engine releases B, JC, JD and derives E = B + JC - JD: the QWI
    // accounting identity holds exactly in every published cell, by
    // construction (post-processing), and E is never charged for.
    let p = panel();
    let spec = MarginalSpec::new(vec![WorkplaceAttr::Ownership], vec![]);
    let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);

    // Three noised statistics per cell, nothing for the derived E.
    let per_cell = 4.0;
    let request = ReleaseRequest::flows(spec)
        .mechanism(MechanismKind::SmoothLaplace)
        .budget_per_cell(PrivacyParams::approximate(0.1, per_cell, 0.05))
        .seed(11);
    let plan = request.plan().unwrap();
    // Cells partition establishments (parallel composition), so the
    // total is 3x the per-cell budget — B, JC, JD — with nothing for E.
    assert!(
        (plan.cost.epsilon - 3.0 * per_cell).abs() < 1e-9,
        "a flow release prices exactly B + JC + JD per cell: {}",
        plan.cost.epsilon
    );

    let released = release_flows(&flows, per_cell, 11);
    assert_eq!(released.len(), flows.num_cells());
    for (key, cell) in &released {
        let stats = flows.cell(*key).expect("released cells come from truth");
        assert!(cell.ending.is_finite());
        // Identity exact: E - B == JC - JD.
        assert!(
            ((cell.ending - cell.beginning) - (cell.job_creation - cell.job_destruction)).abs()
                < 1e-9,
            "net change identity must hold by construction"
        );
        let tolerance = 2000.0 + 0.5 * stats.ending as f64;
        assert!(
            (cell.ending - stats.ending as f64).abs() < tolerance,
            "derived E {} vs true {}",
            cell.ending,
            stats.ending
        );
    }
}
