//! Private release of QWI-style job flows: the smooth-sensitivity
//! machinery applies to creation/destruction queries exactly as to level
//! queries, with the per-flow maximum establishment contribution driving
//! the noise scale.

use eree::prelude::*;
use eree_core::{CellQuery, CountMechanism, SmoothLaplaceMechanism};
use lodes::{DatasetPanel, PanelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabulate::{compute_flows, WorkplaceAttr};

fn panel() -> DatasetPanel {
    DatasetPanel::generate(
        &GeneratorConfig::test_small(5050),
        &PanelConfig {
            quarters: 2,
            growth_sigma: 0.12,
            death_rate: 0.03,
            seed: 29,
        },
    )
}

#[test]
fn private_flow_release_tracks_truth() {
    let p = panel();
    let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
    let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);

    let mech = SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(3);

    let mut total_rel_err = 0.0;
    let mut cells = 0usize;
    for (_, stats) in flows.iter() {
        if stats.job_creation < 20 {
            continue;
        }
        let q = CellQuery {
            count: stats.job_creation,
            max_establishment: stats.max_creation,
        };
        // Average over releases to beat noise in the test.
        let n = 200;
        let mean: f64 = (0..n).map(|_| mech.release(&q, &mut rng)).sum::<f64>() / n as f64;
        total_rel_err += (mean - stats.job_creation as f64).abs() / stats.job_creation as f64;
        cells += 1;
    }
    assert!(cells >= 3, "need cells with substantial creation");
    let mean_rel_err = total_rel_err / cells as f64;
    assert!(
        mean_rel_err < 0.1,
        "averaged releases should track true creation: {mean_rel_err}"
    );
}

#[test]
fn flow_noise_scales_with_flow_concentration_not_level() {
    // A cell whose creation is spread across many establishments gets far
    // less noise than its employment level would suggest: the flow x_v is
    // the largest single-establishment *gain*, not the largest
    // establishment.
    let p = panel();
    let spec = MarginalSpec::new(vec![WorkplaceAttr::Place], vec![]);
    let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
    let levels = compute_marginal(p.quarter(0), &spec);

    let mech = SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).unwrap();
    let mut checked = 0;
    for (key, stats) in flows.iter() {
        let Some(level) = levels.cell(key) else {
            continue;
        };
        if stats.job_creation == 0 || level.count < 100 {
            continue;
        }
        let flow_q = CellQuery {
            count: stats.job_creation,
            max_establishment: stats.max_creation,
        };
        let level_q = CellQuery::from_stats(level);
        let flow_noise = mech.expected_l1(&flow_q).unwrap();
        let level_noise = mech.expected_l1(&level_q).unwrap();
        assert!(
            flow_noise <= level_noise + 1e-9,
            "flow x_v {} <= level x_v {} must give no more noise",
            stats.max_creation,
            level.max_establishment
        );
        checked += 1;
    }
    assert!(checked > 5, "need comparable cells, got {checked}");
}

#[test]
fn net_change_consistency_survives_release() {
    // Releasing B, JC, JD separately and deriving E = B + JC - JD keeps
    // the accounting identity by construction (post-processing).
    let p = panel();
    let spec = MarginalSpec::new(vec![WorkplaceAttr::Ownership], vec![]);
    let flows = compute_flows(p.quarter(0), p.quarter(1), &spec);
    let mech = SmoothLaplaceMechanism::new(0.1, 4.0, 0.05).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    for (_, stats) in flows.iter() {
        let b = mech.release(
            &CellQuery {
                count: stats.beginning,
                max_establishment: stats.max_creation.max(stats.max_destruction).max(1),
            },
            &mut rng,
        );
        let jc = mech.release(
            &CellQuery {
                count: stats.job_creation,
                max_establishment: stats.max_creation.max(1),
            },
            &mut rng,
        );
        let jd = mech.release(
            &CellQuery {
                count: stats.job_destruction,
                max_establishment: stats.max_destruction.max(1),
            },
            &mut rng,
        );
        let derived_e = b + jc - jd;
        // The derived ending employment is a valid post-processed release;
        // verify it is finite and in a plausible band.
        assert!(derived_e.is_finite());
        let tolerance = 2000.0 + 0.5 * stats.ending as f64;
        assert!(
            (derived_e - stats.ending as f64).abs() < tolerance,
            "derived E {derived_e} vs true {}",
            stats.ending
        );
    }
}
