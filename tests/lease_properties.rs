//! Concurrency edge cases of the [`DirLease`] write lease.
//!
//! The durability protocol assumes one writer per store directory, with
//! stale leases (dead holder PIDs) reclaimed automatically. The dangerous
//! corner is the reclaim race: two openers observing the same dead
//! holder's lease and both trying to take over. Exactly one may win, the
//! loser must see a typed [`StoreError::Locked`] naming the winner, and
//! the lease file must never end up torn or removed out from under a live
//! holder. The complementary guarantee: a lease held by a *live* process
//! that is not us is never stolen, no matter how many times we try.

use eree_core::store::{DirLease, StoreError};
use std::fs;
use std::path::PathBuf;
use std::thread;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eree-lease-props-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// PID 0 is the kernel idle process: never in `/proc`, so a lease
/// recording it is provably stale — the same idiom the store unit tests
/// use to simulate a crashed holder.
const DEAD_PID: u32 = 0;

/// PID 1 (init) is always alive on Linux, and conservatively presumed
/// alive elsewhere — a live holder that is not this process.
const LIVE_FOREIGN_PID: u32 = 1;

fn plant_lease(path: &std::path::Path, pid: u32) {
    fs::write(path, format!("{{\"pid\": {pid}}}")).unwrap();
}

#[test]
fn concurrent_stale_reclaim_has_exactly_one_winner_and_no_torn_lease() {
    const RACERS: usize = 4;
    const TRIALS: usize = 25;
    for trial in 0..TRIALS {
        let dir = tmp_dir(&format!("race-{trial}"));
        let lease_path = dir.join("store.lock");
        plant_lease(&lease_path, DEAD_PID);

        let results: Vec<Result<DirLease, StoreError>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..RACERS)
                .map(|_| scope.spawn(|| DirLease::acquire(&lease_path)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let winners: Vec<&DirLease> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        assert_eq!(
            winners.len(),
            1,
            "trial {trial}: expected exactly one winner, got {}",
            winners.len()
        );
        for r in &results {
            if let Err(e) = r {
                // Every loser sees a typed Locked error naming the live
                // winner (all racers share this test process's PID).
                assert!(
                    matches!(e, StoreError::Locked { holder_pid, .. }
                        if *holder_pid == std::process::id()),
                    "trial {trial}: loser saw {e:?}"
                );
            }
        }
        // The surviving lease file is whole — it parses and records the
        // winner — and the reclaim marker never outlives the race.
        let on_disk = fs::read_to_string(&lease_path).unwrap();
        assert!(
            on_disk.contains(&format!("{}", std::process::id())),
            "trial {trial}: lease file does not record the winner: {on_disk}"
        );
        assert!(
            !dir.join("store.lock.reclaim").exists(),
            "trial {trial}: reclaim marker left behind"
        );
        // Dropping the winner releases the lease for the next acquirer.
        drop(results);
        assert!(!lease_path.exists(), "trial {trial}: lease not released");
        let reacquired = DirLease::acquire(&lease_path).unwrap();
        drop(reacquired);
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn live_foreign_lease_is_never_stolen() {
    let dir = tmp_dir("live-foreign");
    let lease_path = dir.join("store.lock");
    plant_lease(&lease_path, LIVE_FOREIGN_PID);
    let before = fs::read_to_string(&lease_path).unwrap();

    // Repeated single-threaded attempts and a concurrent burst: every one
    // must refuse with Locked naming the live holder, and the holder's
    // lease file must be byte-identical afterwards.
    for _ in 0..10 {
        match DirLease::acquire(&lease_path) {
            Err(StoreError::Locked { holder_pid, .. }) => {
                assert_eq!(holder_pid, LIVE_FOREIGN_PID)
            }
            other => panic!("live foreign lease must refuse with Locked, got {other:?}"),
        }
    }
    let outcomes: Vec<Result<DirLease, StoreError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| DirLease::acquire(&lease_path)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for outcome in outcomes {
        assert!(
            matches!(&outcome, Err(StoreError::Locked { holder_pid, .. })
                if *holder_pid == LIVE_FOREIGN_PID),
            "concurrent attempt stole or disturbed a live lease: {outcome:?}"
        );
    }
    assert_eq!(
        fs::read_to_string(&lease_path).unwrap(),
        before,
        "a refused acquire must leave the live lease untouched"
    );
    fs::remove_dir_all(&dir).unwrap();
}
