//! Property-based tests (proptest) over cross-crate invariants:
//! mechanism privacy on random neighbor pairs, engine conservation laws,
//! metric invariants, and accounting arithmetic.

use eree::prelude::*;
use eree_core::mechanisms::{LogLaplaceMechanism, SmoothGammaMechanism, SmoothLaplaceMechanism};
use eree_core::{CellQuery, CountMechanism};
use proptest::prelude::*;

/// Pointwise density-ratio check on a coarse grid (cheap enough for many
/// proptest cases).
fn ratio_bounded(mech: &dyn CountMechanism, q1: &CellQuery, q2: &CellQuery, epsilon: f64) -> bool {
    let hi = 4.0 * (q1.count.max(q2.count) as f64 + 10.0);
    let lo = -hi;
    let e_eps = epsilon.exp() * (1.0 + 1e-9);
    (0..=800).all(|i| {
        let omega = lo + (hi - lo) * i as f64 / 800.0;
        let p1 = mech.output_pdf(q1, omega);
        let p2 = mech.output_pdf(q2, omega);
        if p1 < 1e-290 && p2 < 1e-290 {
            return true;
        }
        p1 <= e_eps * p2 + 1e-300 && p2 <= e_eps * p1 + 1e-300
    })
}

/// A strong α-neighbor pair: the cell belongs to one establishment whose
/// workforce grows from `x` to a random `y ∈ (x, max((1+α)x, x+1)]`.
fn neighbor_pair(x: u64, alpha: f64, t: f64) -> (CellQuery, CellQuery) {
    let max_y = (((1.0 + alpha) * x as f64).floor() as u64).max(x + 1);
    let y = x + 1 + ((max_y - x - 1) as f64 * t) as u64;
    (
        CellQuery {
            count: x,
            max_establishment: x as u32,
        },
        CellQuery {
            count: y,
            max_establishment: y as u32,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn log_laplace_private_on_random_neighbors(
        x in 0u64..20_000,
        alpha in 0.01f64..0.25,
        epsilon in 0.25f64..4.0,
        t in 0.0f64..=1.0,
    ) {
        let mech = LogLaplaceMechanism::new(alpha, epsilon);
        let (q1, q2) = neighbor_pair(x, alpha, t);
        prop_assert!(ratio_bounded(&mech, &q1, &q2, epsilon));
    }

    #[test]
    fn smooth_gamma_private_on_random_neighbors(
        x in 0u64..20_000,
        alpha in 0.01f64..0.2,
        eps_slack in 0.1f64..3.0,
        t in 0.0f64..=1.0,
    ) {
        // Choose an epsilon above the validity threshold.
        let epsilon = 5.0 * (1.0 + alpha).ln() + eps_slack;
        let mech = SmoothGammaMechanism::new(alpha, epsilon).expect("valid by construction");
        let (q1, q2) = neighbor_pair(x, alpha, t);
        prop_assert!(ratio_bounded(&mech, &q1, &q2, epsilon));
    }

    #[test]
    fn smooth_laplace_interval_private_on_random_neighbors(
        x in 0u64..5_000,
        alpha in 0.01f64..0.2,
        eps_slack in 1.05f64..2.0,
        t in 0.0f64..=1.0,
    ) {
        let delta = 0.05f64;
        let epsilon = 2.0 * (1.0 / delta).ln() * (1.0 + alpha).ln() * eps_slack;
        let mech = SmoothLaplaceMechanism::new(alpha, epsilon, delta)
            .expect("valid by construction");
        let (q1, q2) = neighbor_pair(x, alpha, t);
        // Interval check on a coarse grid of one-sided intervals.
        let hi = 4.0 * (q2.count as f64 + 10.0);
        let e_eps = epsilon.exp();
        for i in 0..=60 {
            let b = -hi + 2.0 * hi * i as f64 / 60.0;
            let p1 = mech.output_cdf(&q1, b);
            let p2 = mech.output_cdf(&q2, b);
            prop_assert!(p1 <= e_eps * p2 + delta + 1e-9);
            prop_assert!(p2 <= e_eps * p1 + delta + 1e-9);
            // Complement intervals too.
            let c1 = 1.0 - p1;
            let c2 = 1.0 - p2;
            prop_assert!(c1 <= e_eps * c2 + delta + 1e-9);
            prop_assert!(c2 <= e_eps * c1 + delta + 1e-9);
        }
    }

    #[test]
    fn unbiased_mechanisms_have_zero_mean_noise(
        count in 0u64..100_000,
        x_v in 1u32..10_000,
        alpha in 0.02f64..0.2,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let epsilon = 5.0 * (1.0 + alpha).ln() + 1.0;
        let mech = SmoothGammaMechanism::new(alpha, epsilon).unwrap();
        let q = CellQuery { count, max_establishment: x_v.min(count.max(1) as u32) };
        let mut rng = StdRng::seed_from_u64(count ^ x_v as u64);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| mech.release(&q, &mut rng)).sum::<f64>() / n as f64;
        let scale = mech.noise_scale(&q);
        // Mean within 6 standard errors (sigma = scale).
        prop_assert!(
            (mean - count as f64).abs() < 6.0 * scale / (n as f64).sqrt() + 1e-9,
            "mean {} vs count {} (scale {})", mean, count, scale
        );
    }

    #[test]
    fn engine_conserves_jobs_on_random_specs(
        seed in 0u64..50,
        use_naics in any::<bool>(),
        use_own in any::<bool>(),
        use_sex in any::<bool>(),
        use_edu in any::<bool>(),
    ) {
        let d = Generator::new(GeneratorConfig {
            target_establishments: 300,
            states: 1,
            counties_per_state: 2,
            places_per_county: 4,
            blocks_per_place: 2,
            seed,
            ..GeneratorConfig::default()
        }).generate();
        let mut wp = vec![WorkplaceAttr::Place];
        if use_naics { wp.push(WorkplaceAttr::Naics); }
        if use_own { wp.push(WorkplaceAttr::Ownership); }
        let mut wk = vec![];
        if use_sex { wk.push(WorkerAttr::Sex); }
        if use_edu { wk.push(WorkerAttr::Education); }
        let spec = MarginalSpec::new(wp, wk);
        let m = compute_marginal(&d, &spec);
        prop_assert_eq!(m.total() as usize, d.num_jobs());
        // Per-cell invariants.
        for (_, stats) in m.iter() {
            prop_assert!(stats.count > 0);
            prop_assert!(stats.max_establishment as u64 <= stats.count);
            prop_assert!(stats.establishments as u64 <= stats.count);
        }
    }

    /// The index-based CSR tabulation engine is cell-for-cell identical —
    /// `count`, `establishments`, `max_establishment` — to an independent
    /// brute-force reference (per-worker loop into a per-establishment
    /// map), across random specs, filters, data seeds, and thread counts.
    #[test]
    fn indexed_tabulation_matches_brute_force(
        seed in 0u64..40,
        use_place in any::<bool>(),
        use_naics in any::<bool>(),
        use_own in any::<bool>(),
        use_sex in any::<bool>(),
        use_age in any::<bool>(),
        use_edu in any::<bool>(),
        filter_kind in 0u8..3,
        threads in 1usize..5,
    ) {
        use lodes::{Sex, Worker};
        use std::collections::BTreeMap;

        let d = Generator::new(GeneratorConfig {
            target_establishments: 250,
            states: 1,
            counties_per_state: 2,
            places_per_county: 3,
            blocks_per_place: 2,
            seed,
            ..GeneratorConfig::default()
        }).generate();
        let mut wp = vec![];
        if use_place { wp.push(WorkplaceAttr::Place); }
        if use_naics { wp.push(WorkplaceAttr::Naics); }
        if use_own { wp.push(WorkplaceAttr::Ownership); }
        let mut wk = vec![];
        if use_sex { wk.push(WorkerAttr::Sex); }
        if use_age { wk.push(WorkerAttr::Age); }
        if use_edu { wk.push(WorkerAttr::Education); }
        let spec = MarginalSpec::new(wp, wk);
        let filter = move |w: &Worker| match filter_kind {
            0 => true,
            1 => w.sex == Sex::Female,
            _ => w.age.index() >= 3,
        };

        // Brute-force reference: per-worker loop into a
        // (cell values, establishment) -> count map, aggregated per cell.
        let index = TabulationIndex::build(&d);
        let schema = index.schema(&spec);
        let mut per_estab: BTreeMap<(u64, u32), u32> = BTreeMap::new();
        for w in d.workers() {
            if !filter(w) { continue; }
            let wp_rec = d.workplace(d.employer_of(w.id));
            let mut vals = Vec::new();
            for a in &spec.workplace_attrs { vals.push(a.value(wp_rec)); }
            for a in &spec.worker_attrs { vals.push(a.value(w)); }
            *per_estab.entry((schema.encode(&vals).0, wp_rec.id.0)).or_insert(0) += 1;
        }
        let mut reference: BTreeMap<u64, (u64, u32, u32)> = BTreeMap::new();
        for (&(key, _), &c) in &per_estab {
            let cell = reference.entry(key).or_insert((0, 0, 0));
            cell.0 += c as u64;
            cell.1 += 1;
            cell.2 = cell.2.max(c);
        }

        let m = index.marginal_filtered_sharded(&spec, filter, threads);
        prop_assert_eq!(m.num_cells(), reference.len());
        for (key, stats) in m.iter() {
            let &(count, estabs, max) = reference.get(&key.0)
                .expect("indexed cell missing from brute force");
            prop_assert_eq!(stats.count, count);
            prop_assert_eq!(stats.establishments, estabs);
            prop_assert_eq!(stats.max_establishment, max);
        }

        // Worker-count-balanced shard boundaries (the skew-proof split)
        // are bit-identical to the contiguous single-chunk evaluation:
        // chunking strategy is a performance choice, never a semantic one.
        let contiguous = index.marginal_filtered_sharded(&spec, filter, 1);
        prop_assert_eq!(&m, &contiguous);
        prop_assert_eq!(m.content_digest(), contiguous.content_digest());
    }

    /// The index-based flow tabulation — sharded per-establishment loop,
    /// sorted runs, deterministic k-way merge — is cell-for-cell identical
    /// to an independent per-worker brute force across random specs,
    /// filters, data seeds, and thread counts; and the tabulation (hence
    /// any release derived from it) is bit-identical at any shard count.
    #[test]
    fn indexed_flows_match_brute_force(
        seed in 0u64..40,
        use_place in any::<bool>(),
        use_naics in any::<bool>(),
        use_own in any::<bool>(),
        filter_kind in 0u8..3,
        threads in 1usize..5,
        growth in 0.02f64..0.2,
        deaths in 0.0f64..0.1,
    ) {
        use lodes::{DatasetPanel, PanelConfig, Sex, Worker};
        use std::collections::BTreeMap;

        let panel = DatasetPanel::generate(
            &GeneratorConfig {
                target_establishments: 250,
                states: 1,
                counties_per_state: 2,
                places_per_county: 3,
                blocks_per_place: 2,
                seed,
                ..GeneratorConfig::default()
            },
            &PanelConfig {
                quarters: 2,
                growth_sigma: growth,
                death_rate: deaths,
                seed: seed ^ 0x51,
            },
        );
        let mut wp = vec![];
        if use_place { wp.push(WorkplaceAttr::Place); }
        if use_naics { wp.push(WorkplaceAttr::Naics); }
        if use_own { wp.push(WorkplaceAttr::Ownership); }
        // Flows are establishment-level: workplace attributes only.
        let spec = MarginalSpec::new(wp, vec![]);
        let filter = move |w: &Worker| match filter_kind {
            0 => true,
            1 => w.sex == Sex::Female,
            _ => w.age.index() >= 3,
        };

        // Brute-force reference: per-worker loop on each side into a
        // per-establishment (filtered) count, folded per cell with the
        // published FlowStats semantics.
        let before = TabulationIndex::build(panel.quarter(0));
        let after = TabulationIndex::build(panel.quarter(1));
        let schema = before.schema(&spec);
        let side = |d: &Dataset| -> BTreeMap<u32, u32> {
            let mut counts = BTreeMap::new();
            for w in d.workers() {
                if !filter(w) { continue; }
                *counts.entry(d.employer_of(w.id).0).or_insert(0u32) += 1;
            }
            counts
        };
        let b_counts = side(panel.quarter(0));
        let e_counts = side(panel.quarter(1));
        // (B, E, JC, JD, max_B, max_E, max_JC, max_JD) per cell key.
        type FlowRef = (u64, u64, u64, u64, u32, u32, u32, u32);
        let mut reference: BTreeMap<u64, FlowRef> = BTreeMap::new();
        for wp_rec in panel.quarter(0).workplaces() {
            let b = b_counts.get(&wp_rec.id.0).copied().unwrap_or(0);
            let e = e_counts.get(&wp_rec.id.0).copied().unwrap_or(0);
            if b == 0 && e == 0 { continue; }
            let vals: Vec<u32> = spec.workplace_attrs.iter().map(|a| a.value(wp_rec)).collect();
            let cell = reference.entry(schema.encode(&vals).0)
                .or_insert((0, 0, 0, 0, 0, 0, 0, 0));
            let (jc, jd) = (e.saturating_sub(b), b.saturating_sub(e));
            cell.0 += b as u64;
            cell.1 += e as u64;
            cell.2 += jc as u64;
            cell.3 += jd as u64;
            cell.4 = cell.4.max(b);
            cell.5 = cell.5.max(e);
            cell.6 = cell.6.max(jc);
            cell.7 = cell.7.max(jd);
        }

        let m = before.flows_filtered_sharded(&after, &spec, filter, threads);
        prop_assert_eq!(m.num_cells(), reference.len());
        for (key, stats) in m.iter() {
            let &(b, e, jc, jd, mb, me, mc, md) = reference.get(&key.0)
                .expect("indexed flow cell missing from brute force");
            prop_assert_eq!(stats.beginning, b);
            prop_assert_eq!(stats.ending, e);
            prop_assert_eq!(stats.job_creation, jc);
            prop_assert_eq!(stats.job_destruction, jd);
            prop_assert_eq!(stats.max_beginning, mb);
            prop_assert_eq!(stats.max_ending, me);
            prop_assert_eq!(stats.max_creation, mc);
            prop_assert_eq!(stats.max_destruction, md);
        }

        // Shard count is a performance choice, never a semantic one: the
        // tabulation — and therefore the released artifact drawn from it
        // under a fixed seed — is bit-identical at any thread count.
        let contiguous = before.flows_filtered_sharded(&after, &spec, filter, 1);
        prop_assert_eq!(&m, &contiguous);
        prop_assert_eq!(m.content_digest(), contiguous.content_digest());
        let release = |truth: &FlowMarginal| {
            let request = ReleaseRequest::flows(truth.spec().clone())
                .mechanism(MechanismKind::LogLaplace)
                .budget_per_cell(PrivacyParams::pure(0.1, 1.0))
                .seed(seed);
            let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 3.0));
            engine.execute_flows_precomputed(truth, &request).expect("budget covers one release")
        };
        let a1 = serde_json::to_string(&release(&m)).unwrap();
        let a2 = serde_json::to_string(&release(&contiguous)).unwrap();
        prop_assert_eq!(a1, a2);
    }

    #[test]
    fn spearman_stays_in_range_and_detects_identity(
        values in prop::collection::vec(0.0f64..1e6, 3..60),
    ) {
        use eval::metrics::spearman;
        if let Some(rho) = spearman(&values, &values) {
            prop_assert!((rho - 1.0).abs() < 1e-9);
        }
        let reversed: Vec<f64> = values.iter().map(|v| -v).collect();
        if let Some(rho) = spearman(&values, &reversed) {
            prop_assert!((rho + 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn size_distance_triangle_inequality(
        x in 1u64..10_000,
        y in 1u64..10_000,
        z in 1u64..10_000,
        alpha in 0.01f64..0.5,
    ) {
        use eree_core::size_distance;
        let dxz = size_distance(x, z, alpha);
        let dxy = size_distance(x, y, alpha);
        let dyz = size_distance(y, z, alpha);
        prop_assert!(dxz <= dxy + dyz, "d({x},{z})={dxz} > {dxy}+{dyz}");
        // Identity and symmetry.
        prop_assert_eq!(size_distance(x, x, alpha), 0);
        prop_assert_eq!(size_distance(x, y, alpha), size_distance(y, x, alpha));
    }

    #[test]
    fn release_cost_arithmetic(
        eps in 0.1f64..16.0,
        alpha in 0.01f64..0.3,
    ) {
        use eree_core::accountant::ReleaseCost;
        use eree_core::neighbors::NeighborKind;
        let total = PrivacyParams::pure(alpha, eps);
        let spec = workload3();
        let per_cell = ReleaseCost::per_cell_for_total(&spec, &total, NeighborKind::Weak);
        let cost = ReleaseCost::for_marginal(&spec, &per_cell, NeighborKind::Weak);
        prop_assert!((cost.epsilon - eps).abs() < 1e-9);
        prop_assert_eq!(cost.multiplier, 8);
    }

    /// However a charge sequence is interleaved with refusals, the
    /// lifetime spend never exceeds the budget by more than one relative
    /// tolerance — the regression property for the old absolute, per-charge
    /// tolerance that admitted tiny charges forever after exhaustion.
    #[test]
    fn ledger_never_overspends_its_budget(
        budget_eps in 0.25f64..16.0,
        charges in prop::collection::vec(0.0f64..3.0, 1..60),
        tiny_scale in 1e-12f64..1e-9,
    ) {
        use eree_core::accountant::ReleaseCost;
        use eree_core::LEDGER_REL_TOL;
        let budget = PrivacyParams::pure(0.1, budget_eps);
        let mut ledger = Ledger::new(budget);
        let cap = budget_eps * (1.0 + LEDGER_REL_TOL);
        let charge = |eps: f64| ReleaseCost {
            epsilon: eps,
            delta: 0.0,
            per_cell_epsilon: eps,
            multiplier: 1,
        };
        for (i, &eps) in charges.iter().enumerate() {
            let params = PrivacyParams::pure(0.1, eps);
            let _ = ledger.charge(format!("c{i}"), &params, &charge(eps));
            prop_assert!(
                ledger.spent_epsilon() <= cap,
                "spent {} above cap {} after charge {}", ledger.spent_epsilon(), cap, i
            );
        }
        // Hammer the exhausted (or near-exhausted) ledger with sub-tol
        // charges: the cumulative cap must still hold.
        let tiny = tiny_scale * budget_eps;
        let tiny_params = PrivacyParams::pure(0.1, tiny);
        for i in 0..2_000 {
            let _ = ledger.charge(format!("tiny{i}"), &tiny_params, &charge(tiny));
        }
        prop_assert!(
            ledger.spent_epsilon() <= cap,
            "tiny-charge hammering drove spend {} above cap {}", ledger.spent_epsilon(), cap
        );
        // The ledger's own bookkeeping agrees with an entry replay.
        let replayed = Ledger::replay(*ledger.budget(), ledger.entries()).expect("replayable");
        prop_assert_eq!(replayed.spent_epsilon(), ledger.spent_epsilon());
    }
}
