//! Property-based tests for the shape-release and area-comparison
//! extensions.

use eree::prelude::*;
use lodes::PlaceId;
use proptest::prelude::*;
use tabulate::{area_comparison, AreaSelection};

/// Release shapes through a single-use engine.
fn engine_shapes(
    truth: &Marginal,
    mechanism: MechanismKind,
    budget: PrivacyParams,
    seed: u64,
) -> Vec<eree_core::ShapeRelease> {
    let mut engine = ReleaseEngine::new(budget);
    let artifact = engine
        .execute_precomputed(
            truth,
            &ReleaseRequest::shapes(truth.spec().clone())
                .mechanism(mechanism)
                .budget(budget)
                .seed(seed),
        )
        .expect("budget above frontier");
    match artifact.payload {
        ArtifactPayload::Shapes(shapes) => shapes,
        _ => unreachable!("shapes request yields shapes"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn shapes_always_normalize(
        seed in 0u64..50,
        eps_scale in 1.0f64..8.0,
    ) {
        let d = Generator::new(GeneratorConfig {
            target_establishments: 400,
            states: 1,
            counties_per_state: 2,
            places_per_county: 3,
            blocks_per_place: 2,
            seed,
            ..GeneratorConfig::default()
        })
        .generate();
        let truth = compute_marginal(&d, &workload3());
        // Total budget must clear the per-class validity frontier. Both
        // eps and delta split 8 ways, so the per-class constraint is
        // eps/8 >= 2 ln(8/0.05) ln(1.1) ~= 0.968 => eps >= ~7.8.
        let budget = PrivacyParams::approximate(0.1, 8.0 * eps_scale, 0.05);
        let shapes = engine_shapes(&truth, MechanismKind::SmoothLaplace, budget, seed);
        for s in &shapes {
            let sum: f64 = s.fractions.iter().sum();
            if s.total > 0.0 {
                prop_assert!((sum - 1.0).abs() < 1e-9);
            } else {
                prop_assert!(sum == 0.0);
            }
            for &f in &s.fractions {
                prop_assert!((0.0..=1.0).contains(&f));
            }
            prop_assert!(s.sub_counts.iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn area_partition_conserves_jobs(
        seed in 0u64..50,
        split in 1usize..10,
    ) {
        let d = Generator::new(GeneratorConfig {
            target_establishments: 300,
            states: 1,
            counties_per_state: 2,
            places_per_county: 6,
            blocks_per_place: 2,
            seed,
            ..GeneratorConfig::default()
        })
        .generate();
        let n_places = d.geography().num_places();
        let cut = split.min(n_places - 1);
        // Partition ALL places into two areas: totals must sum to all jobs.
        let a = AreaSelection::new("a", (0..cut as u32).map(PlaceId));
        let b = AreaSelection::new("b", (cut as u32..n_places as u32).map(PlaceId));
        let stats = area_comparison(&d, &[a, b]).unwrap();
        let total: u64 = stats.iter().map(|(_, s)| s.count).sum();
        prop_assert_eq!(total as usize, d.num_jobs());
        // x_v of each area bounds the area's largest establishment.
        for (_, s) in &stats {
            prop_assert!(s.max_establishment as u64 <= s.count);
        }
    }
}
