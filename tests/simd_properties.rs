//! Property tests for the SIMD tabulation kernels: on random specs,
//! filters, seeds, thread counts, and dataset sizes — including datasets
//! smaller than one SIMD chunk, which exercise the scalar remainder path
//! — the vectorized kernels must agree **bit-for-bit** with the scalar
//! kernel, for marginals and flows alike.
//!
//! With the `simd` feature off (or on non-AVX2 hardware) `Kernel::Auto`
//! resolves to the scalar kernel and these properties hold trivially;
//! the CI matrix runs both legs.

use eree::prelude::*;
use lodes::{DatasetPanel, PanelConfig};
use proptest::prelude::*;
use tabulate::{Cmp, FilterExpr, Kernel, TabulationIndex};

/// SplitMix64 step: derives spec/filter choices from one sampled seed
/// (the vendored proptest has no recursive strategies).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const WORKPLACE_ATTRS: [WorkplaceAttr; 6] = [
    WorkplaceAttr::State,
    WorkplaceAttr::County,
    WorkplaceAttr::Place,
    WorkplaceAttr::Block,
    WorkplaceAttr::Naics,
    WorkplaceAttr::Ownership,
];

const WORKER_ATTRS: [WorkerAttr; 5] = [
    WorkerAttr::Sex,
    WorkerAttr::Age,
    WorkerAttr::Race,
    WorkerAttr::Ethnicity,
    WorkerAttr::Education,
];

/// A random marginal spec: 1–3 workplace attributes and 0–3 worker
/// attributes (the dense-scratch worker side is what the SIMD subkey
/// kernel accelerates; zero worker attributes covers the
/// establishment-only path).
fn random_spec(state: &mut u64) -> MarginalSpec {
    let wp = random_workplace_attrs(state);
    let n_wk = (next(state) % 4) as usize;
    let wk = distinct_picks(state, &WORKER_ATTRS, n_wk);
    MarginalSpec::new(wp, wk)
}

/// 1–3 distinct workplace attributes (flow specs must be
/// establishment-level, so this doubles as the flow-spec generator).
fn random_workplace_attrs(state: &mut u64) -> Vec<WorkplaceAttr> {
    let n = 1 + (next(state) % 3) as usize;
    distinct_picks(state, &WORKPLACE_ATTRS, n)
}

/// Up to `n` draws from `pool` without replacement (specs reject
/// duplicate attributes).
fn distinct_picks<T: Copy + PartialEq>(state: &mut u64, pool: &[T], n: usize) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(n);
    for _ in 0..n {
        let pick = pool[(next(state) as usize) % pool.len()];
        if !out.contains(&pick) {
            out.push(pick);
        }
    }
    out
}

/// A random shallow filter expression over both record sides.
fn random_filter(state: &mut u64) -> FilterExpr {
    let leaf = |state: &mut u64| match next(state) % 3 {
        0 => FilterExpr::WorkerCmp(
            WORKER_ATTRS[(next(state) % 5) as usize],
            Cmp::Le,
            next(state) as u32 % 6,
        ),
        1 => FilterExpr::WorkplaceCmp(WorkplaceAttr::Naics, Cmp::Lt, next(state) as u32 % 20),
        _ => FilterExpr::WorkerIn(
            WORKER_ATTRS[(next(state) % 5) as usize],
            vec![next(state) as u32 % 4, next(state) as u32 % 8],
        ),
    };
    match next(state) % 3 {
        0 => leaf(state),
        1 => FilterExpr::And(vec![leaf(state), leaf(state)]),
        _ => FilterExpr::Or(vec![leaf(state), leaf(state).not()]),
    }
}

/// A dataset sized by `size_class`: 0 ⇒ a single establishment (a few
/// dozen workers at most — smaller than one 32-lane SIMD chunk, so the
/// whole tabulation runs through the kernel's remainder path), 1 ⇒ a few
/// establishments (straddles one chunk), 2 ⇒ the standard small test
/// universe (thousands of chunks plus remainders of every phase).
fn config(seed: u64, size_class: u8) -> GeneratorConfig {
    match size_class {
        0 => GeneratorConfig {
            seed,
            states: 1,
            counties_per_state: 1,
            places_per_county: 1,
            blocks_per_place: 1,
            target_establishments: 1,
            ..GeneratorConfig::default()
        },
        1 => GeneratorConfig {
            seed,
            states: 2,
            counties_per_state: 2,
            places_per_county: 2,
            blocks_per_place: 2,
            target_establishments: 4,
            ..GeneratorConfig::default()
        },
        _ => GeneratorConfig::test_small(seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simd_marginals_are_bit_identical_to_scalar(
        seed in 0u64..u64::MAX,
        size_class in 0u8..3,
        threads in 1usize..4,
    ) {
        let mut state = seed;
        let spec = random_spec(&mut state);
        let d = Generator::new(config(next(&mut state), size_class)).generate();
        let index = TabulationIndex::build(&d);

        let scalar = index.marginal_sharded_with_kernel(&spec, threads, Kernel::Scalar);
        let auto = index.marginal_sharded_with_kernel(&spec, threads, Kernel::Auto);
        prop_assert_eq!(&scalar, &auto, "unfiltered marginal diverged");

        let expr = random_filter(&mut state);
        let scalar_f =
            index.marginal_expr_sharded_with_kernel(&spec, &expr, threads, Kernel::Scalar);
        let auto_f =
            index.marginal_expr_sharded_with_kernel(&spec, &expr, threads, Kernel::Auto);
        prop_assert_eq!(&scalar_f, &auto_f, "filtered marginal diverged");
        prop_assert!(scalar_f.total() <= scalar.total());
    }

    #[test]
    fn simd_flows_are_bit_identical_to_scalar(
        seed in 0u64..u64::MAX,
        size_class in 0u8..3,
        threads in 1usize..4,
    ) {
        let mut state = seed;
        // Flows are establishment-level: workplace attributes only.
        let spec = MarginalSpec::new(random_workplace_attrs(&mut state), vec![]);
        let p = DatasetPanel::generate(
            &config(next(&mut state), size_class),
            &PanelConfig {
                quarters: 2,
                growth_sigma: 0.1,
                death_rate: 0.05,
                seed: next(&mut state),
            },
        );
        let before = TabulationIndex::build(p.quarter(0));
        let after = TabulationIndex::build(p.quarter(1));

        let scalar = before.flows_sharded_with_kernel(&after, &spec, threads, Kernel::Scalar);
        let auto = before.flows_sharded_with_kernel(&after, &spec, threads, Kernel::Auto);
        prop_assert_eq!(&scalar, &auto, "unfiltered flows diverged");

        // A worker-side threshold filter applies identically to both
        // quarters, which is what the single-closure flow API expects.
        let attr = WORKER_ATTRS[(next(&mut state) % 5) as usize];
        let cut = next(&mut state) as u32 % 6;
        let scalar_f = before.flows_filtered_sharded_with_kernel(
            &after,
            &spec,
            |w| attr.value(w) <= cut,
            threads,
            Kernel::Scalar,
        );
        let auto_f = before.flows_filtered_sharded_with_kernel(
            &after,
            &spec,
            |w| attr.value(w) <= cut,
            threads,
            Kernel::Auto,
        );
        prop_assert_eq!(&scalar_f, &auto_f, "filtered flows diverged");
    }
}
