//! Integration tests for the publication-season store: kill/resume
//! bit-identity, crash-window repair, and refusal of corrupted,
//! tampered, inconsistent, or re-planned stores.

use eree::prelude::*;
use lodes::Dataset;
use std::fs;
use std::path::{Path, PathBuf};

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("store-resume-{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Dataset {
    Generator::new(GeneratorConfig::test_small(41)).generate()
}

fn budget() -> PrivacyParams {
    PrivacyParams::pure(0.1, 11.0)
}

/// A three-release season; the first two share the Workload 1 tabulation.
fn plan() -> Vec<ReleaseRequest> {
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .describe("R0: workload1 smooth-gamma")
            .seed(1),
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("R1: workload1 log-laplace")
            .seed(2),
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 8.0))
            .describe("R2: workload3 log-laplace")
            .seed(3),
    ]
}

fn sorted_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut paths: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read(&p).unwrap(),
            )
        })
        .collect()
}

#[test]
fn interrupted_season_resumes_bit_identically() {
    let d = dataset();
    let plan = plan();

    // Reference: uninterrupted season.
    let full_dir = test_dir("bitident-full");
    let mut full = SeasonStore::create(&full_dir, budget()).unwrap();
    let report = full.run(&d, &plan).unwrap();
    assert_eq!(report.executed, 3);
    assert_eq!(report.tabulations_computed, 2, "W1 shared, W3 computed");
    assert_eq!(report.tabulation_hits, 1);

    // Killed after one release, then resumed by a fresh process.
    let cut_dir = test_dir("bitident-cut");
    let mut cut = SeasonStore::create(&cut_dir, budget()).unwrap();
    cut.run(&d, &plan[..1]).unwrap();
    assert_eq!(cut.completed(), 1);
    drop(cut); // the kill

    let mut resumed = SeasonStore::open(&cut_dir).unwrap();
    assert_eq!(resumed.completed(), 1);
    let report = resumed.run(&d, &plan).unwrap();
    assert_eq!(report.resumed_from, 1);
    assert_eq!(report.executed, 2);

    // Bit-identical artifacts and ledger, identical remaining budget.
    assert_eq!(
        sorted_files(&full_dir.join("artifacts")),
        sorted_files(&cut_dir.join("artifacts"))
    );
    assert_eq!(
        fs::read(full_dir.join("ledger.json")).unwrap(),
        fs::read(cut_dir.join("ledger.json")).unwrap()
    );
    assert_eq!(
        resumed.ledger().remaining_epsilon(),
        full.ledger().remaining_epsilon()
    );
    assert_eq!(resumed.ledger().spent_epsilon(), 11.0);

    fs::remove_dir_all(full_dir).unwrap();
    fs::remove_dir_all(cut_dir).unwrap();
}

#[test]
fn corrupted_or_tampered_stores_refuse_to_open() {
    let d = dataset();
    let plan = plan();
    let dir = test_dir("tampered");
    let mut store = SeasonStore::create(&dir, budget()).unwrap();
    store.run(&d, &plan[..2]).unwrap();
    drop(store);
    let ledger_path = dir.join("ledger.json");
    let pristine = fs::read_to_string(&ledger_path).unwrap();

    // Unparseable ledger: refused as corrupt.
    fs::write(&ledger_path, &pristine[..pristine.len() / 2]).unwrap();
    assert!(matches!(
        SeasonStore::open(&dir),
        Err(StoreError::Corrupt { .. })
    ));

    // Understated spend (trying to resume with more budget than is left):
    // the replay cross-check inside ledger deserialization refuses.
    let tampered = pristine.replace("\"spent_epsilon\": 3.0", "\"spent_epsilon\": 1.0");
    assert_ne!(tampered, pristine);
    fs::write(&ledger_path, &tampered).unwrap();
    assert!(matches!(
        SeasonStore::open(&dir),
        Err(StoreError::Corrupt { .. })
    ));

    // Inflated budget: the ledger no longer matches the season manifest.
    let tampered = pristine.replacen("\"epsilon\": 11.0", "\"epsilon\": 100.0", 1);
    assert_ne!(tampered, pristine);
    fs::write(&ledger_path, &tampered).unwrap();
    assert!(matches!(
        SeasonStore::open(&dir),
        Err(StoreError::Inconsistent { .. })
    ));

    // Restored pristine state opens again.
    fs::write(&ledger_path, &pristine).unwrap();
    let store = SeasonStore::open(&dir).unwrap();
    assert_eq!(store.completed(), 2);
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn artifact_gaps_and_strays_are_refused() {
    let d = dataset();
    let dir = test_dir("gaps");
    let mut store = SeasonStore::create(&dir, budget()).unwrap();
    store.run(&d, &plan()[..2]).unwrap();
    drop(store);

    // Deleting the first artifact leaves a gap: 000001.json without
    // 000000.json can never be trusted as a contiguous season.
    fs::remove_file(dir.join("artifacts").join("000000.json")).unwrap();
    assert!(matches!(
        SeasonStore::open(&dir),
        Err(StoreError::Inconsistent { .. })
    ));

    // A stray non-artifact file is refused as corrupt, not ignored.
    fs::write(dir.join("artifacts").join("notes.json"), "{}").unwrap();
    assert!(matches!(
        SeasonStore::open(&dir),
        Err(StoreError::Corrupt { .. })
    ));
    fs::remove_file(dir.join("artifacts").join("notes.json")).unwrap();

    // A non-zero-padded name is refused even when its index would parse.
    fs::copy(
        dir.join("artifacts").join("000001.json"),
        dir.join("artifacts").join("0.json"),
    )
    .unwrap();
    assert!(matches!(
        SeasonStore::open(&dir),
        Err(StoreError::Corrupt { .. })
    ));
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn crash_between_artifact_and_ledger_snapshot_rolls_forward() {
    let d = dataset();
    let plan = plan();

    // Reference store: both releases fully recorded.
    let ref_dir = test_dir("crashwin-ref");
    let mut reference = SeasonStore::create(&ref_dir, budget()).unwrap();
    reference.run(&d, &plan[..2]).unwrap();

    // Crashed store: artifact 1 landed but its ledger snapshot did not
    // (the artifact-first write protocol's only in-between state).
    let crash_dir = test_dir("crashwin");
    let mut crashed = SeasonStore::create(&crash_dir, budget()).unwrap();
    crashed.run(&d, &plan[..1]).unwrap();
    drop(crashed);
    fs::copy(
        ref_dir.join("artifacts").join("000001.json"),
        crash_dir.join("artifacts").join("000001.json"),
    )
    .unwrap();

    // Open rolls the ledger forward from the artifact's recorded cost…
    let mut repaired = SeasonStore::open(&crash_dir).unwrap();
    assert_eq!(repaired.completed(), 2);
    assert_eq!(
        repaired.ledger().spent_epsilon(),
        reference.ledger().spent_epsilon()
    );
    // …persisting the repaired snapshot bit-identically to the reference.
    assert_eq!(
        fs::read(crash_dir.join("ledger.json")).unwrap(),
        fs::read(ref_dir.join("ledger.json")).unwrap()
    );
    // The season then resumes as if the crash never happened.
    let report = repaired.run(&d, &plan).unwrap();
    assert_eq!(report.resumed_from, 2);
    assert_eq!(report.executed, 1);
    fs::remove_dir_all(ref_dir).unwrap();
    fs::remove_dir_all(crash_dir).unwrap();

    // A crash-window store whose artifacts ALSO disagree with the ledger
    // is refused — and the refused open leaves every byte untouched (no
    // half-applied roll-forward).
    let bad_dir = test_dir("crashwin-bad");
    let mut bad = SeasonStore::create(&bad_dir, budget()).unwrap();
    bad.run(&d, &plan[..2]).unwrap();
    drop(bad);
    // Simulate the crash window (delete the newest ledger entry by
    // restoring the 1-release snapshot)…
    let one_dir = test_dir("crashwin-bad-one");
    let mut one = SeasonStore::create(&one_dir, budget()).unwrap();
    one.run(&d, &plan[..1]).unwrap();
    drop(one);
    fs::copy(one_dir.join("ledger.json"), bad_dir.join("ledger.json")).unwrap();
    // …and corrupt artifact 0's recorded cost so verification must fail.
    let artifact0 = bad_dir.join("artifacts").join("000000.json");
    let text = fs::read_to_string(&artifact0).unwrap();
    let tampered = text.replace("\"epsilon\": 2.0", "\"epsilon\": 0.25");
    assert_ne!(tampered, text);
    fs::write(&artifact0, tampered).unwrap();
    let ledger_before = fs::read(bad_dir.join("ledger.json")).unwrap();
    assert!(matches!(
        SeasonStore::open(&bad_dir),
        Err(StoreError::Inconsistent { .. })
    ));
    assert_eq!(
        fs::read(bad_dir.join("ledger.json")).unwrap(),
        ledger_before,
        "a refused open must not modify the store"
    );
    fs::remove_dir_all(one_dir).unwrap();
    fs::remove_dir_all(bad_dir).unwrap();
}

#[test]
fn resuming_under_a_different_plan_is_refused() {
    let d = dataset();
    let plan = plan();
    let dir = test_dir("replanned");
    let mut store = SeasonStore::create(&dir, budget()).unwrap();
    store.run(&d, &plan[..1]).unwrap();

    // Same description, different seed: the persisted artifact's
    // provenance no longer matches the plan's first request.
    let mut reseeded = plan.clone();
    reseeded[0] = ReleaseRequest::marginal(workload1())
        .mechanism(MechanismKind::SmoothGamma)
        .budget(PrivacyParams::pure(0.1, 2.0))
        .describe("R0: workload1 smooth-gamma")
        .seed(999);
    assert!(matches!(
        store.run(&d, &reseeded),
        Err(StoreError::Inconsistent { .. })
    ));

    // A plan shorter than what is already persisted is refused too.
    assert!(matches!(
        store.run(&d, &[]),
        Err(StoreError::Inconsistent { .. })
    ));

    // The original plan still resumes.
    let report = store.run(&d, &plan).unwrap();
    assert_eq!(report.resumed_from, 1);
    assert_eq!(report.executed, 2);
    fs::remove_dir_all(dir).unwrap();
}

/// A filtered two-release plan whose sub-population is the declarative
/// `expr` (the S-prefixed canonical style: shared workload1 tabulation,
/// then the filtered county release).
fn filtered_plan(expr: FilterExpr) -> Vec<ReleaseRequest> {
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .describe("F0: workload1 smooth-gamma")
            .seed(1),
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .filter_expr(expr)
            .describe("F1: workload1 sub-population")
            .seed(2),
    ]
}

#[test]
fn ast_filtered_season_resumes_bit_identically() {
    let d = dataset();
    let plan = filtered_plan(ranking2_expr());

    // Reference: uninterrupted season.
    let full_dir = test_dir("ast-full");
    let mut full = SeasonStore::create(&full_dir, budget()).unwrap();
    full.run(&d, &plan).unwrap();
    drop(full);

    // Killed after the unfiltered release, resumed by a fresh process
    // with a *separately constructed* (but structurally equal) filter.
    let cut_dir = test_dir("ast-cut");
    let mut cut = SeasonStore::create(&cut_dir, budget()).unwrap();
    cut.run(&d, &plan[..1]).unwrap();
    drop(cut);
    let mut cut = SeasonStore::open(&cut_dir).unwrap();
    let report = cut.run(&d, &filtered_plan(ranking2_expr())).unwrap();
    assert_eq!((report.resumed_from, report.executed), (1, 1));

    // Every persisted byte agrees with the uninterrupted run.
    assert_eq!(
        sorted_files(&full_dir.join("artifacts")),
        sorted_files(&cut_dir.join("artifacts"))
    );
    // And the filter expression is part of the persisted provenance.
    let stored = cut.load_artifact(1).unwrap();
    assert_eq!(stored.request.filter_id(), Some(ranking2_expr().id()));
    fs::remove_dir_all(full_dir).unwrap();
    fs::remove_dir_all(cut_dir).unwrap();
}

#[test]
fn resuming_with_a_changed_filter_digest_is_refused() {
    let d = dataset();
    let dir = test_dir("refiltered");
    let mut store = SeasonStore::create(&dir, budget()).unwrap();
    store.run(&d, &filtered_plan(ranking2_expr())).unwrap();
    drop(store);

    // Same plan shape, same descriptions and seeds — but the filter now
    // names a different population. The pre-AST `filtered` boolean could
    // not see this; the digest comparison must.
    let changed = FilterExpr::sex(lodes::Sex::Female);
    assert_ne!(changed.id(), ranking2_expr().id());
    let mut store = SeasonStore::open(&dir).unwrap();
    match store.run(&d, &filtered_plan(changed)) {
        Err(StoreError::Inconsistent { detail }) => {
            assert!(detail.contains("digest"), "unexpected detail: {detail}");
        }
        other => panic!("expected Inconsistent, got {other:?}"),
    }

    // Dropping the filter from the plan entirely is a plan change too.
    let mut unfiltered = filtered_plan(ranking2_expr());
    unfiltered[1] = ReleaseRequest::marginal(workload1())
        .mechanism(MechanismKind::LogLaplace)
        .budget(PrivacyParams::pure(0.1, 1.0))
        .describe("F1: workload1 sub-population")
        .seed(2);
    assert!(matches!(
        store.run(&d, &unfiltered),
        Err(StoreError::Inconsistent { .. })
    ));

    // The original filter still resumes.
    let report = store.run(&d, &filtered_plan(ranking2_expr())).unwrap();
    assert_eq!((report.resumed_from, report.executed), (2, 0));
    fs::remove_dir_all(dir).unwrap();
}

#[test]
#[allow(deprecated)]
fn pre_ast_closure_store_resumes_under_ast_plan() {
    // A store persisted before the AST existed recorded `filtered: true`
    // with no expression — exactly what the deprecated closure escape
    // hatch still records. Re-expressing the same plan with a FilterExpr
    // must be accepted (the digest is unverifiable; the flag and every
    // other field still are), because the alternative is stranding every
    // pre-AST season.
    let d = dataset();
    let dir = test_dir("pre-ast");
    let closure_plan: Vec<ReleaseRequest> = {
        let mut plan = filtered_plan(ranking2_expr());
        plan[1] = ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .filter(ranking2_filter)
            .describe("F1: workload1 sub-population")
            .seed(2);
        plan
    };
    let mut store = SeasonStore::create(&dir, budget()).unwrap();
    store.run(&d, &closure_plan).unwrap();
    let stored = store.load_artifact(1).unwrap();
    assert!(stored.request.filtered && stored.request.filter.is_none());
    drop(store);

    // Resume under the AST-ified plan: accepted, nothing re-executed.
    let mut store = SeasonStore::open(&dir).unwrap();
    let report = store.run(&d, &filtered_plan(ranking2_expr())).unwrap();
    assert_eq!((report.resumed_from, report.executed), (2, 0));

    // The compatibility path is one-directional: an *unfiltered* stored
    // artifact never matches a filtered request.
    let unf_dir = test_dir("pre-ast-unf");
    let mut unfiltered_store = SeasonStore::create(&unf_dir, budget()).unwrap();
    let mut plain = filtered_plan(ranking2_expr());
    plain[1] = ReleaseRequest::marginal(workload1())
        .mechanism(MechanismKind::LogLaplace)
        .budget(PrivacyParams::pure(0.1, 1.0))
        .describe("F1: workload1 sub-population")
        .seed(2);
    unfiltered_store.run(&d, &plain).unwrap();
    assert!(matches!(
        unfiltered_store.run(&d, &filtered_plan(ranking2_expr())),
        Err(StoreError::Inconsistent { .. })
    ));
    fs::remove_dir_all(dir).unwrap();
    fs::remove_dir_all(unf_dir).unwrap();
}

#[test]
fn resuming_against_a_different_dataset_is_refused() {
    let d = dataset();
    let plan = plan();
    let dir = test_dir("redatasetted");
    let mut store = SeasonStore::create(&dir, budget()).unwrap();
    store.run(&d, &plan[..1]).unwrap();
    drop(store);

    // Same plan, different confidential database: the digest bound by the
    // first run no longer matches, in-session and across reopen alike.
    let other = Generator::new(GeneratorConfig::test_small(42)).generate();
    let mut store = SeasonStore::open(&dir).unwrap();
    assert!(matches!(
        store.run(&other, &plan),
        Err(StoreError::Inconsistent { .. })
    ));
    assert_eq!(store.completed(), 1, "refusal must not execute anything");

    // The original dataset still resumes.
    let report = store.run(&d, &plan).unwrap();
    assert_eq!(report.resumed_from, 1);
    assert_eq!(report.executed, 2);
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn overdrawn_plans_abort_cleanly_and_stay_resumable() {
    let d = dataset();
    let plan = plan(); // needs eps 11
    let dir = test_dir("overdrawn");
    let tight = PrivacyParams::pure(0.1, 3.5);
    let mut store = SeasonStore::create(&dir, tight).unwrap();

    // R0 (2.0) and R1 (1.0) fit; R2 (8.0) overdraws and aborts the run.
    let err = store.run(&d, &plan).unwrap_err();
    match err {
        StoreError::Refused { index, .. } => assert_eq!(index, 2),
        other => panic!("expected Refused, got {other}"),
    }
    assert_eq!(store.completed(), 2);
    assert!((store.ledger().spent_epsilon() - 3.0).abs() < 1e-12);
    drop(store);

    // The aborted store reopens consistently, and a re-planned tail that
    // fits the remaining budget completes the season.
    let mut store = SeasonStore::open(&dir).unwrap();
    assert_eq!(store.completed(), 2);
    let mut replanned = plan[..2].to_vec();
    replanned.push(
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 0.5))
            .describe("R2: workload3 at the remaining eps")
            .seed(3),
    );
    let report = store.run(&d, &replanned).unwrap();
    assert_eq!(report.executed, 1);
    assert!(store.ledger().remaining_epsilon() < 1e-9);
    fs::remove_dir_all(dir).unwrap();
}
