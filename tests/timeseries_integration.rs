//! Time-series integration: dynamically consistent SDL noise leaks exact
//! growth rates while ER-EE-private quarterly releases (real mechanisms,
//! fresh noise, ledger-accounted) do not.

use eree::prelude::*;
use lodes::{DatasetPanel, PanelConfig};
use sdl::{growth_rate_attack, PanelPublisher, SdlRelease};

fn panel() -> DatasetPanel {
    DatasetPanel::generate(
        &GeneratorConfig::test_small(3030),
        &PanelConfig {
            quarters: 3,
            growth_sigma: 0.08,
            death_rate: 0.0,
            seed: 17,
        },
    )
}

#[test]
fn sdl_panel_leaks_exact_growth_rates() {
    let p = panel();
    let cfg = SdlConfig {
        round_output: false,
        ..SdlConfig::default()
    };
    let publisher = PanelPublisher::new(&p, cfg);
    let releases = publisher.publish_all(&p, &workload1());
    let results = growth_rate_attack(&p, &releases, cfg.small_cell.limit);
    assert!(
        results.len() > 10,
        "found {} attackable cells",
        results.len()
    );
    for r in &results {
        assert!(
            (r.recovered_growth - r.true_growth).abs() < 1e-9,
            "dynamic consistency must cancel the factor exactly: {r:?}"
        );
    }
}

#[test]
fn private_panel_resists_growth_attack_within_budget() {
    let p = panel();
    let dir = std::env::temp_dir().join("eree-timeseries-it-panel");
    let _ = std::fs::remove_dir_all(&dir);
    let annual = PrivacyParams::approximate(0.1, 6.0, 0.05);
    let per_quarter = PrivacyParams::approximate(0.1, 2.0, 0.015);

    // Release each quarter with the real Smooth Laplace mechanism through
    // the quarterly-panel agency: one season per quarter, every season's
    // reservation drawn from the one multi-year cap. Each request uses the
    // SAME base seed — the consistent-over-time rewrite derives distinct
    // per-quarter noise streams, which is exactly what the ratio attack
    // needs to fail.
    let mut agency = eree_core::AgencyStore::create_panel(&dir, annual).unwrap();
    let releases: Vec<SdlRelease> = (0..p.quarters())
        .map(|q| {
            let name = format!("q{q}");
            agency.create_season(&name, per_quarter).unwrap();
            let report = agency
                .run_panel_season(
                    &name,
                    &p,
                    q,
                    &[ReleaseRequest::marginal(workload1())
                        .mechanism(MechanismKind::SmoothLaplace)
                        .budget(per_quarter)
                        .describe(format!("Q{q}"))
                        .seed(500)],
                )
                .expect("annual cap covers three quarters");
            assert_eq!(report.executed, 1);
            let artifact = agency.open_season(&name).unwrap().load_artifact(0).unwrap();
            let published = match artifact.payload {
                ArtifactPayload::Cells(cells) => cells,
                _ => unreachable!("marginal request yields cells"),
            };
            SdlRelease {
                published,
                truth: compute_marginal(p.quarter(q), &workload1()),
            }
        })
        .collect();

    // The cap is fully reserved: 3 x 2.0 = 6.0.
    assert!(agency.remaining_epsilon() < 1e-9);
    // A fourth season must be refused without reserving.
    let refused = agency.create_season("q3", per_quarter).unwrap_err();
    assert!(matches!(refused, StoreError::AgencyBudget { .. }));
    assert_eq!(agency.seasons().len(), 3);

    // The ratio attack's recovered growth rates are materially wrong.
    let results = growth_rate_attack(&p, &releases, 2.5);
    assert!(!results.is_empty());
    let exact = results
        .iter()
        .filter(|r| (r.recovered_growth - r.true_growth).abs() < 1e-9)
        .count();
    assert!(
        exact == 0,
        "fresh per-quarter noise must never cancel exactly ({exact}/{})",
        results.len()
    );
    let mut rel_errors: Vec<f64> = results
        .iter()
        .map(|r| ((r.recovered_growth - r.true_growth) / r.true_growth).abs())
        .collect();
    rel_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = rel_errors[rel_errors.len() / 2];
    assert!(
        median > 0.005,
        "median relative recovery error {median} should be macroscopic"
    );
    drop(agency);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panel_quarters_compose_in_ledger_with_integerized_outputs() {
    use eree_core::{CellQuery, Integerized, SmoothGammaMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Integer publication path across the panel: outputs are plausible
    // non-negative integers every quarter.
    let p = panel();
    let mech = Integerized::new(SmoothGammaMechanism::new(0.1, 2.0).unwrap());
    let mut rng = StdRng::seed_from_u64(9);
    for snapshot in p.snapshots() {
        let truth = compute_marginal(snapshot, &workload1());
        for (_, stats) in truth.iter().take(50) {
            let out = mech.release(&CellQuery::from_stats(stats), &mut rng);
            // Non-negative by construction; sanity: same order of magnitude
            // for large cells.
            if stats.count > 1000 {
                assert!(
                    (out as f64) > 0.2 * stats.count as f64
                        && (out as f64) < 5.0 * stats.count as f64,
                    "integerized output {out} vs count {}",
                    stats.count
                );
            }
        }
    }
}
