//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the `criterion_group!`/`criterion_main!` macro surface and
//! the `Criterion`/`BenchmarkGroup`/`Bencher` types this workspace's
//! benches use.
//!
//! No statistical analysis — each benchmark runs a fixed number of timed
//! samples and reports min/mean per-iteration wall time to stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
        self
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.to_string(), self.sample_size, f);
        self
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    // Warm-up: one untimed closure call that also sizes iteration counts.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "  {name}: mean {} / min {}",
        format_time(mean),
        format_time(min)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std_black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
