//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s of sampled elements; see [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vectors with lengths drawn from `size` and elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        assert!(self.size.start < self.size.end, "empty size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
