//! Offline stand-in for `proptest`: a deterministic mini property-testing
//! harness exposing the macro surface this workspace uses —
//! `proptest! { #![proptest_config(..)] #[test] fn case(x in strategy) {..} }`,
//! `prop_assert!`, `prop_assert_eq!`, `any::<T>()`, and
//! `prop::collection::vec`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled arguments so it can be reproduced (sampling is
//! deterministic per test name).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Entry macro: expands each `fn name(arg in strategy, ...) { body }` into
/// a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal item-by-item expansion of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed with args {:?}:\n{}",
                        __case + 1,
                        __config.cases,
                        ($(&$arg,)*),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Property assertion; returns a test-case error instead of panicking so
/// the harness can report the sampled arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}
