//! Sampling strategies: uniform ranges, `any`, `Just`.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                // Hit both endpoints with small positive probability so
                // closed-range properties exercise their bounds.
                match rng.next_u64() % 64 {
                    0 => lo,
                    1 => hi,
                    _ => lo + (rng.next_unit_f64() as $t) * (hi - lo),
                }
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// Always the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Sample one value from the full domain.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full domain; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// The whole-domain strategy for `T`: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}
