//! Configuration, RNG, and failure type for the mini harness.

/// Number of sampled cases per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A failed property, carrying its message up to the harness.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build from a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG (SplitMix64 seeded by an FNV-1a hash of the
/// test name, so every test gets an independent but reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's name.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw on `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
