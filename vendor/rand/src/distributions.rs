//! Distributions: the `Standard` (type-default) distribution, weighted
//! categorical sampling, and uniform range sampling.

use crate::{Rng, RngCore};
use std::borrow::Borrow;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: uniform over the full domain for
/// integers and `bool`, uniform on `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Uniform `[0, 1)` from 53 random mantissa bits.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Errors constructing a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were provided.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Categorical distribution over indices `0..n` with the given weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from any iterable of non-negative `f64` weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(Self { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let len = self.cumulative.len();
        let u = unit_f64(rng) * self.total;
        // First index whose cumulative weight exceeds u.
        let mut index = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cumulative weights"))
        {
            Ok(i) => (i + 1).min(len - 1),
            Err(i) => i.min(len - 1),
        };
        // Never return a zero-weight item (upstream guarantee): a draw
        // landing exactly on a duplicated cumulative boundary would pick
        // the zero-weight entry; skip forward to the next positive one.
        while index + 1 < len && self.cumulative[index] <= prev_cumulative(&self.cumulative, index)
        {
            index += 1;
        }
        index
    }
}

#[inline]
fn prev_cumulative(cumulative: &[f64], index: usize) -> f64 {
    if index == 0 {
        0.0
    } else {
        cumulative[index - 1]
    }
}

/// Uniform range sampling (`Rng::gen_range` support).
pub mod uniform {
    use super::unit_f64;
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draw one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        // Full-domain u64/i64 inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    self.start + (unit_f64(rng) as $t) * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    // Treat the closed interval as half-open: the endpoint
                    // has measure zero for the float use in this workspace.
                    lo + (unit_f64(rng) as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_matches_weights() {
        let w = WeightedIndex::new([0.2f64, 0.3, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[w.sample(&mut rng)] += 1;
        }
        for (i, &expected) in [0.2, 0.3, 0.5].iter().enumerate() {
            let frac = counts[i] as f64 / n as f64;
            assert!((frac - expected).abs() < 0.01, "index {i}: {frac}");
        }
    }

    #[test]
    fn weighted_index_never_returns_zero_weight_items() {
        let w = WeightedIndex::new([0.5f64, 0.0, 0.5, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100_000 {
            let i = w.sample(&mut rng);
            assert!(i == 0 || i == 2 || i == 4, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([1.0, -0.5]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
    }
}
