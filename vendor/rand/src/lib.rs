//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the narrow slice of `rand` it
//! actually uses: [`RngCore`] / [`Rng`] / [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded by SplitMix64 — *not* the
//! upstream ChaCha12, so absolute noise streams differ from upstream
//! `rand`, which is fine because the repository pins its own seeds and
//! asserts statistical rather than bit-exact properties), and the
//! [`distributions`] module with [`distributions::Standard`],
//! [`distributions::WeightedIndex`] and uniform range sampling.
//!
//! Sampling quality notes:
//!
//! * `f64` draws use the standard 53-bit mantissa construction, uniform on
//!   `[0, 1)`.
//! * integer range sampling reduces a 64-bit draw modulo the span; the
//!   modulo bias is below 2⁻⁴⁰ for every span used in this workspace.

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from an explicit distribution.
    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the canonical 64→64 mixer used for seeding.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_f64_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_bounds_only_inclusively() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u64..8);
            assert!((5..8).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynrng: &mut dyn RngCore = &mut rng;
        let u: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&u));
    }
}
