//! Seedable generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// Deterministic standard generator: xoshiro256++ with SplitMix64 seeding.
///
/// Not the upstream ChaCha12 `StdRng`; this workspace pins its own seeds
/// and never depends on upstream `rand`'s exact output stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}
