//! Offline stand-in for `rand_distr` (0.4 API surface): the log-normal,
//! Pareto, and exponential distributions used by the synthetic LODES
//! generator and the noise test-suite.
//!
//! Samplers are exact transforms of uniform draws (Box–Muller for the
//! normal underlying [`LogNormal`], inverse-CDF for [`Pareto`] and
//! [`Exp`]), so seeded streams are fully deterministic.

pub use rand::distributions::Distribution;
use rand::distributions::Standard;
use rand::Rng;

/// Parameter errors from distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A scale/shape/rate parameter was non-positive or non-finite.
    BadParameter,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// One standard normal draw via Box–Muller (two uniforms per draw).
#[inline]
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = Standard.sample(rng);
    let u2: f64 = Standard.sample(rng);
    // Guard u1 = 0 (probability 2^-53 but ln(0) is -inf).
    let r = (-2.0 * u1.max(f64::MIN_POSITIVE).ln()).sqrt();
    r * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution: `exp(mu + sigma * N(0,1))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the location `mu` and scale `sigma >= 0` of the
    /// underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error::BadParameter);
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto distribution with the given scale (minimum) and shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Create from `scale > 0` and `shape > 0`.
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if !(scale.is_finite() && scale > 0.0 && shape.is_finite() && shape > 0.0) {
            return Err(Error::BadParameter);
        }
        Ok(Self { scale, shape })
    }
}

impl Distribution<f64> for Pareto {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = Standard.sample(rng);
        // Inverse CDF: scale * (1-u)^(-1/shape); 1-u in (0, 1].
        self.scale * (1.0 - u).max(f64::MIN_POSITIVE).powf(-1.0 / self.shape)
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Create from `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error::BadParameter);
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Exp {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = Standard.sample(rng);
        -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: impl Iterator<Item = f64>) -> (f64, f64, usize) {
        let v: Vec<f64> = samples.collect();
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        (mean, var, n)
    }

    #[test]
    fn lognormal_moments() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (mean, _, _) = moments((0..200_000).map(|_| d.sample(&mut rng)));
        // E = exp(sigma^2/2) = exp(0.125)
        assert!((mean - 0.125f64.exp()).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let (mean, _, _) = moments((0..200_000).map(|_| d.sample(&mut rng)));
        // E = scale * shape/(shape-1) = 3
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let d = Exp::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (mean, var, _) = moments((0..200_000).map(|_| d.sample(&mut rng)));
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!((var - 16.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Exp::new(-1.0).is_err());
    }
}
