//! Offline stand-in for `serde`.
//!
//! The real serde is a visitor-based framework; this vendored replacement
//! collapses it to a concrete JSON-like [`Value`] model, which is all the
//! workspace needs: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, plus `serde_json::{to_string, to_string_pretty, from_str}`
//! round-trips.
//!
//! Mapping conventions (self-consistent, close to serde's externally
//! tagged defaults):
//!
//! * named-field structs → objects;
//! * 1-field tuple structs (newtypes) → the inner value, transparent;
//! * n-field tuple structs → arrays;
//! * unit enum variants → the variant name as a string;
//! * tuple enum variants → `{"Variant": value}` / `{"Variant": [values]}`;
//! * maps → arrays of `[key, value]` pairs (keys need not be strings).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON-like value: the serialization interchange model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (JSON number without sign or fraction).
    U64(u64),
    /// Signed integer (JSON number with sign, no fraction).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build from any message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Fetch a struct field from an object value (derive-macro support).
pub fn get_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    v.get(name)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Types that can be converted to a [`Value`].
pub trait Serialize {
    /// Convert to the interchange model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the interchange model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError::new(format!("expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(
                    format!("integer {n} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range")))?,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(
                    format!("integer {n} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::new(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!(
                "expected 3-element array, got {other:?}"
            ))),
        }
    }
}

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys
/// (e.g. packed cell keys) round-trip losslessly.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(<(K, V)>::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array of pairs, got {other:?}"
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
