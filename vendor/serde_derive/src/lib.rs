//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! A hand-rolled token parser (no `syn`/`quote` — the build environment
//! has no registry access) covering exactly the shapes this workspace
//! derives on:
//!
//! * structs with named fields;
//! * tuple structs (1-field newtypes serialize transparently);
//! * enums with unit and tuple variants.
//!
//! Generics, struct variants, and `#[serde(...)]` attributes are not
//! supported and fail loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    arity: usize,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Count top-level comma-separated segments inside a group, tracking angle
/// brackets so `BTreeMap<K, V>` counts as one segment.
fn count_segments(group: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut segments = 0;
    let mut in_segment = false;
    for tt in group {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    segments += 1;
                }
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        segments += 1;
    }
    segments
}

/// Parse named fields: skip attributes and visibility, collect `name: Type`.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        // Skip field attributes.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the bracket group
                }
                _ => break,
            }
        }
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        // Field name.
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected field name, found `{other}`"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Skip the type up to a top-level comma.
        let mut depth: i32 = 0;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        // Skip variant attributes.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected variant name, found `{other}`"),
            None => break,
        };
        let arity = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                count_segments(g)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde derive: struct variant `{name}` not supported by the vendored serde")
            }
            _ => 0,
        };
        // Skip an explicit discriminant (`= expr`) up to the separating comma.
        let mut ended = false;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => {
                    ended = true;
                    break;
                }
            }
        }
        variants.push(Variant { name, arity });
        if ended {
            break;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut is_struct = None;
    // Skip outer attributes and visibility; find `struct` or `enum`.
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                is_struct = Some(true);
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_struct = Some(false);
                break;
            }
            other => panic!("serde derive: unexpected token `{other}` before item keyword"),
        }
    }
    let is_struct = is_struct.expect("serde derive: no struct/enum keyword found");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type `{name}` not supported by the vendored serde");
    }
    let kind = if is_struct {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_segments(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        }
    };
    Item { name, kind }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match v.arity {
                        0 => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        1 => format!(
                            "{name}::{vname}(x0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(x0))]),"
                        ),
                        n => {
                            let binds: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
    .parse()
    .expect("serde derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        ItemKind::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{ ::serde::Value::Seq(items) if items.len() == {n} => ::std::result::Result::Ok(Self({})), other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"expected {n}-element array for {name}, got {{other:?}}\"))) }}",
                inits.join(", ")
            )
        }
        ItemKind::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let tuple_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    let vname = &v.name;
                    if v.arity == 1 {
                        format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                        )
                    } else {
                        let n = v.arity;
                        let inits: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{vname}\" => match payload {{ ::serde::Value::Seq(items) if items.len() == {n} => ::std::result::Result::Ok({name}::{vname}({inits})), other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"expected {n}-element payload for {name}::{vname}, got {{other:?}}\"))) }},",
                            inits = inits.join(", ")
                        )
                    }
                })
                .collect();
            let mut arms = Vec::new();
            if !unit_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Str(s) => match s.as_str() {{ {} other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{other}}` for {name}\"))) }},",
                    unit_arms.join(" ")
                ));
            }
            if !tuple_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Map(entries) if entries.len() == 1 => {{ let (tag, payload) = &entries[0]; match tag.as_str() {{ {} other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{other}}` for {name}\"))) }} }},",
                    tuple_arms.join(" ")
                ));
            }
            arms.push(format!(
                "other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unexpected value for enum {name}: {{other:?}}\")))"
            ));
            format!("match v {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl must parse")
}
