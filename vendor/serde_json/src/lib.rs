//! Offline stand-in for `serde_json`: JSON text ⇄ the vendored
//! [`serde::Value`] model.
//!
//! Floats are written with Rust's shortest-round-trip formatting (`{:?}`),
//! so `f64` values survive `to_string` → `from_str` bit-exactly; `u64`
//! keys/counts above 2⁵³ are written as integer literals and re-parsed
//! exactly.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Convert any serializable value to the interchange model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!(
                    "non-finite float {x} is not valid JSON"
                )));
            }
            // {:?} is Rust's shortest round-trip formatting.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::I64(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_collections() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::F64(1.25e-9)),
            ("big".to_string(), Value::U64(u64::MAX)),
            ("neg".to_string(), Value::I64(-42)),
            (
                "s".to_string(),
                Value::Str("line\n\"quoted\"\\\u{1}".to_string()),
            ),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::Null, Value::Bool(true)]),
            ),
            ("empty".to_string(), Value::Seq(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "failed for {text}");
        }
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -2.5e-17] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
